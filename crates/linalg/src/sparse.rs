//! Sparse eta-vector kernels for the revised simplex's basis factorization.
//!
//! The revised simplex (see `privmech-lp`'s `SOLVER.md`) keeps the basis
//! inverse in *product form*: a sequence of **eta matrices**, each the
//! identity except for one column. Solving with the basis then reduces to
//! applying (FTRAN) or transpose-applying (BTRAN) every eta in turn against a
//! dense work vector. These kernels are the innermost loops of that solver,
//! placed next to [`crate::kernels`] so both tableau forms share one home for
//! their hot paths.
//!
//! An eta column is stored as its pivot position, the pivot entry, and the
//! remaining nonzeros; both kernels skip all arithmetic that exact zeros make
//! vacuous (the dominant case on the paper's sparse LPs — an FTRAN of a
//! 3-nonzero constraint column touches only the etas whose pivot row the
//! vector has actually reached).

use crate::scalar::Scalar;

/// A borrowed sparse vector: parallel index/value slices, indices strictly
/// increasing, no stored zeros. This is the view type handed out by
/// [`Csr::row`] and consumed by the revised simplex's FTRAN/refactorization
/// interfaces — a `Copy` pair of slices, so passing one is free.
#[derive(Debug, Clone, Copy)]
pub struct SparseVec<'a, T> {
    idx: &'a [usize],
    val: &'a [T],
}

impl<'a, T: Scalar> SparseVec<'a, T> {
    /// View over parallel index/value slices.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    #[must_use]
    pub fn new(idx: &'a [usize], val: &'a [T]) -> Self {
        assert_eq!(idx.len(), val.len(), "index/value slices must be parallel");
        SparseVec { idx, val }
    }

    /// The index slice.
    #[must_use]
    pub fn indices(&self) -> &'a [usize] {
        self.idx
    }

    /// The value slice, parallel to [`SparseVec::indices`].
    #[must_use]
    pub fn values(&self) -> &'a [T] {
        self.val
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Whether the vector stores no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Iterate the `(index, value)` entries in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &'a T)> + 'a {
        self.idx.iter().copied().zip(self.val.iter())
    }

    /// Owned `(index, value)` pairs (for callers that need to re-sort or
    /// mutate a working copy, e.g. the LU refactorization).
    #[must_use]
    pub fn to_pairs(&self) -> Vec<(usize, T)> {
        self.iter().map(|(i, v)| (i, v.clone())).collect()
    }

    /// Scatter the entries into the (all-zero) dense `work` vector — the
    /// view-typed twin of [`scatter`].
    ///
    /// # Panics
    /// Panics if an index is out of bounds for `work`.
    pub fn scatter_into(&self, work: &mut [T]) {
        for (i, v) in self.iter() {
            work[i] = v.clone();
        }
    }

    /// Sparse dot product `Σ val · dense[idx]`, skipping terms whose dense
    /// operand is exactly zero — the view-typed twin of [`sparse_dot`].
    ///
    /// # Panics
    /// Panics if an index is out of bounds for `dense`.
    #[must_use]
    pub fn dot(&self, dense: &[T]) -> T {
        let mut acc = T::zero();
        for (i, v) in self.iter() {
            if !dense[i].is_exactly_zero() {
                acc.add_mul_assign(v, &dense[i]);
            }
        }
        acc
    }
}

/// A compressed-sparse-row matrix: the constraint store behind the LP
/// solver's standard form (`privmech-lp`'s `SOLVER.md` § CSR constraint
/// store).
///
/// Layout: the classic three-array CSR. `row_ptr` has one entry per row plus
/// a final sentinel; row `i`'s entries live at `row_ptr[i]..row_ptr[i + 1]`
/// in the parallel `col_idx`/`values` arrays. Invariants, enforced by every
/// constructor and checkable via [`Csr::check_invariants`]:
///
/// 1. `row_ptr[0] == 0`, `row_ptr` is monotone non-decreasing (strictly
///    increasing across non-empty rows), and its last entry equals the
///    stored-entry count;
/// 2. within each row, column indices are **strictly increasing** and less
///    than [`Csr::num_cols`];
/// 3. no stored value is exactly zero.
///
/// Rows therefore iterate in column order and columns of the
/// [`Csr::transpose`] iterate in row order, which is exactly the iteration
/// order the pivot-identity contract of the LP solver depends on.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T: Scalar> {
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// An empty matrix with `n_rows` rows and `n_cols` columns.
    #[must_use]
    pub fn empty(n_rows: usize, n_cols: usize) -> Self {
        Csr {
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from per-row `(column, value)` entry lists. Entries within a row
    /// may arrive unsorted and may repeat a column: they are stably sorted by
    /// column, duplicates are summed **in arrival order** (matching what a
    /// dense accumulation row would compute, bit for bit on `f64`), and
    /// entries whose final value is exactly zero are dropped.
    ///
    /// # Panics
    /// Panics if a column index is out of bounds.
    #[must_use]
    pub fn from_rows(n_cols: usize, rows: Vec<Vec<(usize, T)>>) -> Self {
        let mut out = Csr {
            n_cols,
            row_ptr: Vec::with_capacity(rows.len() + 1),
            col_idx: Vec::new(),
            values: Vec::new(),
        };
        out.row_ptr.push(0);
        for mut row in rows {
            row.sort_by_key(|&(c, _)| c);
            let mut iter = row.into_iter();
            if let Some((mut col, mut acc)) = iter.next() {
                assert!(
                    col < n_cols,
                    "column index {col} out of bounds ({n_cols} columns)"
                );
                for (c, v) in iter {
                    assert!(
                        c < n_cols,
                        "column index {c} out of bounds ({n_cols} columns)"
                    );
                    if c == col {
                        acc.add_assign_ref(&v);
                    } else {
                        if !acc.is_exactly_zero() {
                            out.col_idx.push(col);
                            out.values.push(acc);
                        }
                        col = c;
                        acc = v;
                    }
                }
                if !acc.is_exactly_zero() {
                    out.col_idx.push(col);
                    out.values.push(acc);
                }
            }
            out.row_ptr.push(out.col_idx.len());
        }
        debug_assert!(out.check_invariants().is_ok());
        out
    }

    /// Build from dense rows, dropping exactly-zero cells.
    ///
    /// # Panics
    /// Panics if a row's length differs from `n_cols`.
    #[must_use]
    pub fn from_dense(n_cols: usize, rows: &[Vec<T>]) -> Self {
        let mut out = Csr {
            n_cols,
            row_ptr: Vec::with_capacity(rows.len() + 1),
            col_idx: Vec::new(),
            values: Vec::new(),
        };
        out.row_ptr.push(0);
        for row in rows {
            assert_eq!(row.len(), n_cols, "dense row length must equal n_cols");
            for (c, v) in row.iter().enumerate() {
                if !v.is_exactly_zero() {
                    out.col_idx.push(c);
                    out.values.push(v.clone());
                }
            }
            out.row_ptr.push(out.col_idx.len());
        }
        debug_assert!(out.check_invariants().is_ok());
        out
    }

    /// Materialize as dense rows (zeros included) — the oracle direction of
    /// the dense ↔ CSR round-trip, and what the dense-tableau solver scatters
    /// its initial tableau from.
    #[must_use]
    pub fn to_dense(&self) -> Vec<Vec<T>> {
        (0..self.num_rows())
            .map(|i| {
                let mut row = vec![T::zero(); self.n_cols];
                for (c, v) in self.row(i).iter() {
                    row[c] = v.clone();
                }
                row
            })
            .collect()
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns.
    #[must_use]
    pub fn num_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored (exactly nonzero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row `i` as a borrowed sparse vector (column indices strictly
    /// increasing).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> SparseVec<'_, T> {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        SparseVec {
            idx: &self.col_idx[lo..hi],
            val: &self.values[lo..hi],
        }
    }

    /// The row-pointer array (`num_rows + 1` entries, last == [`Csr::nnz`]).
    #[must_use]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array, parallel to [`Csr::csr_values`].
    #[must_use]
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// The stored values in row-major order.
    #[must_use]
    pub fn csr_values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the stored values (the equilibration path scales
    /// them in place). The sparsity pattern is fixed: callers must keep every
    /// value exactly nonzero, or [`Csr::check_invariants`] will fail.
    #[must_use]
    pub fn csr_values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// The transpose, built by a counting pass: entry order within each
    /// transposed row follows the original **row** order, so the transpose of
    /// a CSR matrix is the CSC view of the same matrix (columns iterate in
    /// row order), with all invariants holding by construction.
    #[must_use]
    pub fn transpose(&self) -> Csr<T> {
        let m = self.num_rows();
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for k in 0..self.n_cols {
            counts[k + 1] += counts[k];
        }
        let row_ptr = counts.clone();
        let nnz = self.nnz();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![T::zero(); nnz];
        for i in 0..m {
            for (c, v) in self.row(i).iter() {
                let slot = counts[c];
                counts[c] += 1;
                col_idx[slot] = i;
                values[slot] = v.clone();
            }
        }
        let out = Csr {
            n_cols: m,
            row_ptr,
            col_idx,
            values,
        };
        debug_assert!(out.check_invariants().is_ok());
        out
    }

    /// Verify every structural invariant (see the type docs), returning a
    /// description of the first violation. Constructors `debug_assert` this;
    /// the CSR invariant test suite calls it directly.
    ///
    /// # Errors
    /// Returns a human-readable description of the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.row_ptr.first() != Some(&0) {
            return Err("row_ptr must start at 0".to_string());
        }
        if *self.row_ptr.last().expect("row_ptr is never empty") != self.col_idx.len() {
            return Err("row_ptr must end at nnz".to_string());
        }
        if self.col_idx.len() != self.values.len() {
            return Err("col_idx and values must be parallel".to_string());
        }
        for w in self.row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(format!("row_ptr not monotone: {} > {}", w[0], w[1]));
            }
        }
        for i in 0..self.num_rows() {
            let cols = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!(
                        "row {i}: column indices not strictly increasing ({} then {})",
                        w[0], w[1]
                    ));
                }
            }
            if let Some(&last) = cols.last() {
                if last >= self.n_cols {
                    return Err(format!("row {i}: column {last} out of bounds"));
                }
            }
        }
        for (k, v) in self.values.iter().enumerate() {
            if v.is_exactly_zero() {
                return Err(format!("stored explicit zero at entry {k}"));
            }
        }
        Ok(())
    }
}

/// One eta column of a product-form basis inverse: the identity matrix with
/// column [`Eta::pivot`] replaced by a sparse vector whose diagonal entry is
/// [`Eta::pivot_value`] and whose off-diagonal nonzeros are
/// [`Eta::entries`].
#[derive(Debug, Clone)]
pub struct Eta<T: Scalar> {
    /// Row index of the eta column's diagonal (pivot) entry.
    pub pivot: usize,
    /// The diagonal (pivot) entry; never zero.
    pub pivot_value: T,
    /// Off-diagonal nonzeros `(row, value)` of the eta column, excluding the
    /// pivot row.
    pub entries: Vec<(usize, T)>,
}

impl<T: Scalar> Eta<T> {
    /// Build an eta column from the dense result of an FTRAN: the pivot entry
    /// is read at `pivot`, every other exact nonzero becomes an off-diagonal
    /// entry.
    ///
    /// # Panics
    /// Panics if `dense[pivot]` is exactly zero (a singular pivot).
    #[must_use]
    pub fn from_dense(pivot: usize, dense: &[T]) -> Self {
        let pivot_value = dense[pivot].clone();
        assert!(
            !pivot_value.is_exactly_zero(),
            "eta column with a zero pivot entry"
        );
        let entries = dense
            .iter()
            .enumerate()
            .filter(|&(i, v)| i != pivot && !v.is_exactly_zero())
            .map(|(i, v)| (i, v.clone()))
            .collect();
        Eta {
            pivot,
            pivot_value,
            entries,
        }
    }

    /// Number of stored nonzeros (including the pivot entry).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len() + 1
    }

    /// True iff this eta is the identity matrix (pivot entry one, no
    /// off-diagonal nonzeros) — applying it is a no-op, so callers can skip
    /// storing it altogether.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.entries.is_empty() && self.pivot_value == T::one()
    }
}

/// FTRAN step: in-place solve `E·w' = w` for one eta matrix `E`.
///
/// Concretely `w'[pivot] = w[pivot] / pivot_value` followed by
/// `w'[i] = w[i] - t_i·w'[pivot]` over the off-diagonal nonzeros. When
/// `w[pivot]` is exactly zero the whole step is a no-op and no arithmetic
/// runs — this sparsity shortcut is what makes a product-form FTRAN cheap on
/// the paper's LPs.
pub fn ftran_eta<T: Scalar>(work: &mut [T], eta: &Eta<T>) {
    if work[eta.pivot].is_exactly_zero() {
        return;
    }
    work[eta.pivot].div_assign_ref(&eta.pivot_value);
    // `z` is moved out so the borrow checker allows in-place updates of the
    // sibling entries; it is written back unchanged.
    let z = std::mem::replace(&mut work[eta.pivot], T::zero());
    for (i, t) in &eta.entries {
        work[*i].sub_mul_assign(t, &z);
    }
    work[eta.pivot] = z;
}

/// BTRAN step: in-place solve `w'ᵀ·E = wᵀ` for one eta matrix `E`.
///
/// Only the pivot entry changes:
/// `w'[pivot] = (w[pivot] - Σᵢ w[i]·t_i) / pivot_value`. Off-diagonal terms
/// whose `w[i]` is exactly zero are skipped, and if the accumulated numerator
/// is zero the division is skipped as well.
pub fn btran_eta<T: Scalar>(work: &mut [T], eta: &Eta<T>) {
    let mut acc = work[eta.pivot].clone();
    for (i, t) in &eta.entries {
        if !work[*i].is_exactly_zero() {
            acc.sub_mul_assign(&work[*i], t);
        }
    }
    work[eta.pivot] = if acc.is_exactly_zero() {
        T::zero()
    } else {
        acc.div_ref(&eta.pivot_value)
    };
}

/// Scatter sparse `entries` into the (all-zero) dense `work` vector.
///
/// # Panics
/// Panics if an index is out of bounds for `work`.
pub fn scatter<T: Scalar>(work: &mut [T], entries: &[(usize, T)]) {
    for (i, v) in entries {
        work[*i] = v.clone();
    }
}

/// Reset `work` to all zeros (the companion of [`scatter`] for reusing one
/// dense scratch vector across FTRAN/BTRAN calls without reallocating).
pub fn clear<T: Scalar>(work: &mut [T]) {
    for w in work.iter_mut() {
        *w = T::zero();
    }
}

/// Sparse dot product `Σ entries_v · dense[entries_i]`, skipping terms whose
/// dense operand is exactly zero.
///
/// # Panics
/// Panics if an index is out of bounds for `dense`.
#[must_use]
pub fn sparse_dot<T: Scalar>(entries: &[(usize, T)], dense: &[T]) -> T {
    let mut acc = T::zero();
    for (i, v) in entries {
        if !dense[*i].is_exactly_zero() {
            acc.add_mul_assign(v, &dense[*i]);
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// Sparse rank-one elimination kernels (LU factorization).
//
// An LU factorization's `L` part is a product of elementary eliminations,
// each the identity plus one sparse row or column of multipliers. Applying
// `L⁻¹` (FTRAN) or `L⁻ᵀ` (BTRAN) to a work vector reduces to the two
// kernels below: a *scatter* (one source entry updates many targets) and a
// *gather* (many source entries update one target). A column elimination is
// a scatter forward and a gather transposed; a Forrest–Tomlin row
// elimination is the exact mirror.
// ---------------------------------------------------------------------------

/// Scatter-shaped elimination step: `work[i] -= v · work[anchor]` for every
/// `(i, v)` in `entries`. When `work[anchor]` is exactly zero the whole step
/// is a no-op and no arithmetic runs — the sparsity shortcut that makes
/// triangular solves cheap on the paper's LPs.
///
/// # Panics
/// Panics if an index is out of bounds for `work`.
pub fn sub_scaled_scatter<T: Scalar>(work: &mut [T], anchor: usize, entries: &[(usize, T)]) {
    if work[anchor].is_exactly_zero() {
        return;
    }
    // The anchor is moved out so the borrow checker allows in-place updates
    // of the sibling entries; it is written back unchanged.
    let z = std::mem::replace(&mut work[anchor], T::zero());
    for (i, v) in entries {
        work[*i].sub_mul_assign(v, &z);
    }
    work[anchor] = z;
}

/// Gather-shaped elimination step: `work[anchor] -= Σ v · work[i]` over
/// `entries`, skipping terms whose `work[i]` is exactly zero.
///
/// # Panics
/// Panics if an index is out of bounds for `work`.
pub fn sub_dot_gather<T: Scalar>(work: &mut [T], anchor: usize, entries: &[(usize, T)]) {
    // The anchor is moved out so the borrow checker allows reading the
    // sibling entries while accumulating into it (an elimination never lists
    // its own anchor among its entries).
    let mut acc = std::mem::replace(&mut work[anchor], T::zero());
    for (i, v) in entries {
        if !work[*i].is_exactly_zero() {
            acc.sub_mul_assign(v, &work[*i]);
        }
    }
    work[anchor] = acc;
}

// ---------------------------------------------------------------------------
// Column-wise sparse upper-triangular solves (LU factorization).
//
// The `U` factor is stored column-wise with two permutation arrays mapping
// logical basis *positions* onto physical row and column indices:
// `cpos[j]` is the column id holding position `j`, `rpos[j]` its diagonal
// (pivot) row. Upper triangularity means every entry of column `cpos[j]`
// sits in a row whose position is at most `j`. Both solves below need only
// column access, which is what lets Forrest–Tomlin updates avoid
// maintaining a row-wise copy of `U`.
// ---------------------------------------------------------------------------

/// FTRAN tail: in-place solve `U x = w` for a column-wise upper-triangular
/// `U` (see the section comment for the layout). On return `work[rpos[j]]`
/// holds the solution entry of position `j`. Positions whose running value
/// is exactly zero are skipped entirely.
///
/// # Panics
/// Panics if a diagonal entry is missing or indices are out of bounds.
pub fn solve_upper_ftran<T: Scalar>(
    work: &mut [T],
    ucols: &[Vec<(usize, T)>],
    cpos: &[usize],
    rpos: &[usize],
) {
    for j in (0..cpos.len()).rev() {
        let r = rpos[j];
        if work[r].is_exactly_zero() {
            continue;
        }
        let col = &ucols[cpos[j]];
        let diag = &col
            .iter()
            .find(|(i, _)| *i == r)
            .expect("upper-triangular column missing its diagonal entry")
            .1;
        work[r].div_assign_ref(diag);
        let x_j = std::mem::replace(&mut work[r], T::zero());
        for (i, v) in col {
            if *i != r {
                work[*i].sub_mul_assign(v, &x_j);
            }
        }
        work[r] = x_j;
    }
}

/// BTRAN head: in-place solve `Uᵀ z = c` for a column-wise upper-triangular
/// `U`, with the input scattered as `work[rpos[j]] = c_j`. Forward
/// substitution over positions ascending from `start_pos` (for a unit input
/// at position `p`, every solution entry below `p` is zero, so callers pass
/// `start_pos = p` to skip the leading prefix).
///
/// # Panics
/// Panics if a diagonal entry is missing or indices are out of bounds.
pub fn solve_upper_btran<T: Scalar>(
    work: &mut [T],
    ucols: &[Vec<(usize, T)>],
    cpos: &[usize],
    rpos: &[usize],
    start_pos: usize,
) {
    for j in start_pos..cpos.len() {
        let r = rpos[j];
        let col = &ucols[cpos[j]];
        let mut acc = std::mem::replace(&mut work[r], T::zero());
        let mut diag = None;
        for (i, v) in col {
            if *i == r {
                diag = Some(v);
            } else if !work[*i].is_exactly_zero() {
                acc.sub_mul_assign(v, &work[*i]);
            }
        }
        let diag = diag.expect("upper-triangular column missing its diagonal entry");
        work[r] = if acc.is_exactly_zero() {
            T::zero()
        } else {
            acc.div_ref(diag)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};

    fn dense_apply_inverse(eta: &Eta<Rational>, w: &[Rational]) -> Vec<Rational> {
        // Reference: solve E x = w densely.
        let mut x = w.to_vec();
        x[eta.pivot] = w[eta.pivot].div_ref(&eta.pivot_value);
        for (i, t) in &eta.entries {
            let delta = t.mul_ref(&x[eta.pivot]);
            x[*i] = x[*i].sub_ref(&delta);
        }
        x
    }

    #[test]
    fn ftran_matches_dense_reference() {
        let eta = Eta {
            pivot: 1,
            pivot_value: rat(2, 1),
            entries: vec![(0, rat(1, 2)), (2, rat(-3, 1))],
        };
        let w = vec![rat(1, 1), rat(4, 1), rat(5, 1)];
        let expected = dense_apply_inverse(&eta, &w);
        let mut work = w;
        ftran_eta(&mut work, &eta);
        assert_eq!(work, expected);
    }

    #[test]
    fn ftran_skips_zero_pivot_entry() {
        let eta = Eta {
            pivot: 1,
            pivot_value: rat(7, 1),
            entries: vec![(0, rat(1, 1))],
        };
        let mut work = vec![rat(3, 1), Rational::zero(), rat(9, 1)];
        let before = work.clone();
        ftran_eta(&mut work, &eta);
        assert_eq!(work, before, "zero at the pivot row must be a no-op");
    }

    #[test]
    fn btran_is_the_transpose_solve() {
        // yᵀ E = wᵀ  ⇔  y agrees with w off-pivot and
        // y[pivot] = (w[pivot] - Σ w_i t_i) / pivot_value.
        let eta = Eta {
            pivot: 0,
            pivot_value: rat(3, 1),
            entries: vec![(2, rat(5, 1))],
        };
        let mut work = vec![rat(6, 1), rat(1, 1), rat(2, 1)];
        btran_eta(&mut work, &eta);
        // y0 = (6 - 2·5) / 3 = -4/3.
        assert_eq!(work, vec![rat(-4, 3), rat(1, 1), rat(2, 1)]);
        // Check yᵀE = wᵀ: column `pivot` gives y·t = -4/3·3 + 2·5 = 6.
        let recovered = work[0]
            .mul_ref(&rat(3, 1))
            .add_ref(&work[2].mul_ref(&rat(5, 1)));
        assert_eq!(recovered, rat(6, 1));
    }

    #[test]
    fn eta_from_dense_and_identity_detection() {
        let dense = vec![Rational::zero(), rat(1, 1), Rational::zero()];
        let eta = Eta::from_dense(1, &dense);
        assert!(eta.is_identity());
        assert_eq!(eta.nnz(), 1);
        let dense = vec![rat(1, 2), rat(4, 1), Rational::zero()];
        let eta = Eta::from_dense(1, &dense);
        assert!(!eta.is_identity());
        assert_eq!(eta.nnz(), 2);
    }

    #[test]
    fn scatter_and_gather_kernels_are_transposes() {
        // E = I - l·e₀ᵀ with l over rows {1, 2}: forward scatter from row 0,
        // transposed gather into row 0.
        let entries = vec![(1, rat(1, 2)), (2, rat(-3, 1))];
        let mut w = vec![rat(4, 1), rat(1, 1), rat(2, 1)];
        sub_scaled_scatter(&mut w, 0, &entries);
        assert_eq!(w, vec![rat(4, 1), rat(-1, 1), rat(14, 1)]);
        let mut z = vec![rat(4, 1), rat(1, 1), rat(2, 1)];
        sub_dot_gather(&mut z, 0, &entries);
        // z0 = 4 - (1/2·1 + (-3)·2) = 4 + 11/2 = 19/2.
        assert_eq!(z, vec![rat(19, 2), rat(1, 1), rat(2, 1)]);
        // Zero anchor: scatter is a no-op.
        let mut w = vec![Rational::zero(), rat(1, 1), rat(2, 1)];
        let before = w.clone();
        sub_scaled_scatter(&mut w, 0, &entries);
        assert_eq!(w, before);
    }

    #[test]
    fn upper_triangular_solves_match_dense_reference() {
        // U (position space) = [[2, 1, 0], [0, 3, 1], [0, 0, 4]] with
        // shuffled physical indices: positions (0,1,2) live in rows (2,0,1)
        // and columns (1,2,0).
        let rpos = vec![2usize, 0, 1];
        let cpos = vec![1usize, 2, 0];
        let mut ucols: Vec<Vec<(usize, Rational)>> = vec![Vec::new(); 3];
        // Position 0 column: diagonal 2 (row 2).
        ucols[1] = vec![(2, rat(2, 1))];
        // Position 1 column: entry 1 at position 0 (row 2), diagonal 3 (row 0).
        ucols[2] = vec![(2, rat(1, 1)), (0, rat(3, 1))];
        // Position 2 column: entry 1 at position 1 (row 0), diagonal 4 (row 1).
        ucols[0] = vec![(0, rat(1, 1)), (1, rat(4, 1))];

        // FTRAN: solve U x = (5, 7, 8) in position space → scatter by rpos.
        let mut work = vec![Rational::zero(); 3];
        work[rpos[0]] = rat(5, 1);
        work[rpos[1]] = rat(7, 1);
        work[rpos[2]] = rat(8, 1);
        solve_upper_ftran(&mut work, &ucols, &cpos, &rpos);
        // Back substitution: x2 = 2, x1 = (7-2)/3 = 5/3, x0 = (5-5/3)/2 = 5/3.
        assert_eq!(work[rpos[2]], rat(2, 1));
        assert_eq!(work[rpos[1]], rat(5, 3));
        assert_eq!(work[rpos[0]], rat(5, 3));

        // BTRAN: solve Uᵀ z = e₁ (unit at position 1).
        let mut work = vec![Rational::zero(); 3];
        work[rpos[1]] = rat(1, 1);
        solve_upper_btran(&mut work, &ucols, &cpos, &rpos, 1);
        // z0 not needed (start at 1): z1 = 1/3, z2 = (0 - 1·z1)/4 = -1/12.
        assert_eq!(work[rpos[1]], rat(1, 3));
        assert_eq!(work[rpos[2]], rat(-1, 12));
        // Verify Uᵀz = e₁ on position 1: 1·z0? (z0 = 0) + 3·z1 = 1. ✓
        let recovered = rat(3, 1).mul_ref(&work[rpos[1]]);
        assert_eq!(recovered, rat(1, 1));
    }

    #[test]
    fn scatter_clear_dot_roundtrip() {
        let mut work = vec![Rational::zero(); 4];
        let entries = vec![(0, rat(1, 2)), (3, rat(-2, 1))];
        scatter(&mut work, &entries);
        assert_eq!(work[0], rat(1, 2));
        assert_eq!(work[3], rat(-2, 1));
        let dense = vec![rat(4, 1), rat(9, 1), rat(9, 1), rat(1, 2)];
        assert_eq!(sparse_dot(&entries, &dense), rat(1, 1));
        clear(&mut work);
        assert!(work.iter().all(Rational::is_zero));
    }
}
