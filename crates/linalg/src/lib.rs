//! # privmech-linalg
//!
//! Dense generic linear algebra for the `privmech` workspace.
//!
//! The paper represents oblivious privacy mechanisms, consumer post-processing
//! and the geometric mechanism as small dense matrices and reasons about them
//! with determinants, inverses and matrix products (Lemmas 1–3, Theorem 2).
//! This crate provides exactly that toolbox, generic over a [`Scalar`] field
//! so the same algorithms run exactly over [`privmech_numerics::Rational`] or
//! quickly over `f64`.
//!
//! ```
//! use privmech_linalg::Matrix;
//! use privmech_numerics::{rat, Rational};
//!
//! // A row-stochastic post-processing matrix and its action on a mechanism row.
//! let t = Matrix::from_rows(vec![
//!     vec![rat(9, 11), rat(2, 11)],
//!     vec![rat(0, 1), rat(1, 1)],
//! ]).unwrap();
//! assert!(t.is_row_stochastic());
//! assert_eq!(t.determinant().unwrap(), rat(9, 11));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dense;
pub mod kernels;
pub mod scalar;
pub mod sparse;

pub use dense::{LinalgError, Matrix};
pub use scalar::Scalar;
