//! In-place row kernels shared by Gaussian elimination and the simplex
//! tableau updates.
//!
//! These are the innermost loops of every exact solve in the workspace. They
//! work on plain slices so both [`crate::Matrix`] rows and the LP solver's
//! raw tableau rows can use them, and they lean on the by-reference
//! [`Scalar`] operations so that `Rational` updates never clone operands.

use crate::scalar::Scalar;

/// `dst[j] -= factor * src[j]` for all `j`, skipping zero source entries.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sub_scaled<T: Scalar>(dst: &mut [T], factor: &T, src: &[T]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch in sub_scaled");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        if !s.is_exactly_zero() {
            d.sub_mul_assign(factor, s);
        }
    }
}

/// `dst[j] += factor * src[j]` for all `j`, skipping zero source entries.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn add_scaled<T: Scalar>(dst: &mut [T], factor: &T, src: &[T]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch in add_scaled");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        if !s.is_exactly_zero() {
            d.add_mul_assign(factor, s);
        }
    }
}

/// `dst[j] -= factor * src[j]` only at the positions in `active`.
///
/// The simplex pivot precomputes the nonzero support of the pivot row once
/// and then updates every other row only at those columns; with sparse
/// tableaus this skips the large untouched majority of each row.
///
/// # Panics
/// Panics if any index in `active` is out of bounds for either slice.
pub fn sub_scaled_at<T: Scalar>(dst: &mut [T], factor: &T, src: &[T], active: &[usize]) {
    for &j in active {
        dst[j].sub_mul_assign(factor, &src[j]);
    }
}

/// `dst[j] *= factor` for all `j`, skipping zero entries.
pub fn scale<T: Scalar>(dst: &mut [T], factor: &T) {
    for d in dst.iter_mut() {
        if !d.is_exactly_zero() {
            *d = d.mul_ref(factor);
        }
    }
}

/// `dst[j] /= divisor` for all `j`, skipping zero entries.
pub fn div_all<T: Scalar>(dst: &mut [T], divisor: &T) {
    for d in dst.iter_mut() {
        if !d.is_exactly_zero() {
            d.div_assign_ref(divisor);
        }
    }
}

/// Dot product `sum_j a[j] * b[j]`, skipping zero entries of `a`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "length mismatch in dot");
    let mut acc = T::zero();
    for (x, y) in a.iter().zip(b.iter()) {
        if !x.is_exactly_zero() {
            acc.add_mul_assign(x, y);
        }
    }
    acc
}

/// Indices of the exactly-nonzero entries of `row`.
#[must_use]
pub fn nonzero_support<T: Scalar>(row: &[T]) -> Vec<usize> {
    let mut out = Vec::new();
    nonzero_support_into(row, &mut out);
    out
}

/// Fill `out` with the indices of the exactly-nonzero entries of `row`,
/// reusing its allocation (cleared first). Hot loops that compute a support
/// per iteration keep one scratch vector alive instead of reallocating.
pub fn nonzero_support_into<T: Scalar>(row: &[T], out: &mut Vec<usize>) {
    out.clear();
    for (j, v) in row.iter().enumerate() {
        if !v.is_exactly_zero() {
            out.push(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};

    #[test]
    fn sub_scaled_matches_scalar_loop() {
        let src = vec![rat(1, 2), Rational::zero(), rat(-3, 4)];
        let mut dst = vec![rat(1, 1), rat(2, 1), rat(3, 1)];
        sub_scaled(&mut dst, &rat(2, 1), &src);
        assert_eq!(dst, vec![Rational::zero(), rat(2, 1), rat(9, 2)]);
    }

    #[test]
    fn sub_scaled_at_touches_only_active_columns() {
        let src = vec![rat(1, 1), rat(7, 1), rat(1, 1)];
        let mut dst = vec![rat(5, 1), rat(5, 1), rat(5, 1)];
        sub_scaled_at(&mut dst, &rat(1, 1), &src, &[0, 2]);
        assert_eq!(dst, vec![rat(4, 1), rat(5, 1), rat(4, 1)]);
    }

    #[test]
    fn scale_div_round_trip() {
        let mut row = vec![rat(2, 3), Rational::zero(), rat(-5, 7)];
        let factor = rat(21, 4);
        let orig = row.clone();
        scale(&mut row, &factor);
        div_all(&mut row, &factor);
        assert_eq!(row, orig);
    }

    #[test]
    fn dot_and_support() {
        let a = vec![rat(1, 2), Rational::zero(), rat(2, 1)];
        let b = vec![rat(4, 1), rat(9, 1), rat(1, 4)];
        assert_eq!(dot(&a, &b), rat(5, 2));
        assert_eq!(nonzero_support(&a), vec![0, 2]);
    }

    #[test]
    fn f64_kernels_work_too() {
        let mut dst = vec![1.0f64, 2.0, 3.0];
        add_scaled(&mut dst, &0.5, &[2.0, 0.0, 4.0]);
        assert_eq!(dst, vec![2.0, 2.0, 5.0]);
    }
}
