//! Dense row-major matrices over a [`Scalar`] field.
//!
//! The mechanism matrices of the paper are small and dense ((n+1) × (n+1) for a
//! count query over n rows), so a simple row-major `Vec` representation with
//! Gaussian elimination is both adequate and easy to verify. All algorithms are
//! generic over the scalar so the same code runs exactly (with `Rational`) or
//! fast (with `f64`).

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::scalar::Scalar;

/// Errors produced by matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The operands have incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was found.
        found: String,
    },
    /// The matrix is singular (or numerically singular) and cannot be inverted
    /// or used to solve the requested system.
    Singular,
    /// The requested operation needs a square matrix.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A row or column index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it must be below.
        bound: usize,
    },
    /// Construction from rows failed because the rows had differing lengths.
    RaggedRows,
    /// Construction was attempted with zero rows or zero columns.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            LinalgError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (must be < {bound})")
            }
            LinalgError::RaggedRows => write!(f, "rows have differing lengths"),
            LinalgError::Empty => write!(f, "matrix must have at least one row and one column"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix over a [`Scalar`] field.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// A `rows × cols` matrix of zeros.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Matrix<T> {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Matrix<T> {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Build a matrix from a rectangular vector of rows.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Result<Matrix<T>, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::RaggedRows);
        }
        let nrows = rows.len();
        let data = rows.into_iter().flatten().collect();
        Ok(Matrix {
            rows: nrows,
            cols,
            data,
        })
    }

    /// Build a matrix by evaluating `f(row, col)` for every entry.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Matrix<T> {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True iff the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the entry at `(row, col)`, returning `None` when out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<&T> {
        if row < self.rows && col < self.cols {
            Some(&self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Set the entry at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: T) -> Result<(), LinalgError> {
        if row >= self.rows {
            return Err(LinalgError::IndexOutOfBounds {
                index: row,
                bound: self.rows,
            });
        }
        if col >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: col,
                bound: self.cols,
            });
        }
        self.data[row * self.cols + col] = value;
        Ok(())
    }

    /// Borrow row `row` as a slice.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Clone column `col` into a vector.
    ///
    /// # Panics
    /// Panics if `col` is out of bounds.
    #[must_use]
    pub fn col(&self, col: usize) -> Vec<T> {
        assert!(col < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self[(i, col)].clone()).collect()
    }

    /// Iterate over rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks(self.cols)
    }

    /// Borrow row `row` as a mutable slice.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Borrow two distinct rows at once, the first mutably.
    ///
    /// # Panics
    /// Panics if either index is out of bounds or the indices are equal.
    #[must_use]
    pub fn row_pair_mut(&mut self, dst: usize, src: usize) -> (&mut [T], &[T]) {
        assert!(
            dst < self.rows && src < self.rows,
            "row index out of bounds"
        );
        assert_ne!(dst, src, "row_pair_mut needs distinct rows");
        let cols = self.cols;
        if dst < src {
            let (lo, hi) = self.data.split_at_mut(src * cols);
            (&mut lo[dst * cols..(dst + 1) * cols], &hi[..cols])
        } else {
            let (lo, hi) = self.data.split_at_mut(dst * cols);
            (&mut hi[..cols], &lo[src * cols..(src + 1) * cols])
        }
    }

    /// In-place row axpy: `row[dst] += factor * row[src]`.
    ///
    /// # Panics
    /// Panics if either index is out of bounds or the indices are equal.
    pub fn row_add_scaled(&mut self, dst: usize, factor: &T, src: usize) {
        let (d, s) = self.row_pair_mut(dst, src);
        crate::kernels::add_scaled(d, factor, s);
    }

    /// In-place row axpy: `row[dst] -= factor * row[src]`.
    ///
    /// # Panics
    /// Panics if either index is out of bounds or the indices are equal.
    pub fn row_sub_scaled(&mut self, dst: usize, factor: &T, src: usize) {
        let (d, s) = self.row_pair_mut(dst, src);
        crate::kernels::sub_scaled(d, factor, s);
    }

    /// In-place row scaling: `row[row] *= factor`.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn row_scale(&mut self, row: usize, factor: &T) {
        crate::kernels::scale(self.row_mut(row), factor);
    }

    /// In-place row division: `row[row] /= divisor`.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn row_div(&mut self, row: usize, divisor: &T) {
        crate::kernels::div_all(self.row_mut(row), divisor);
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].clone())
    }

    /// Multiply every entry by `factor`.
    #[must_use]
    pub fn scale(&self, factor: &T) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .map(|v| v.clone() * factor.clone())
                .collect(),
        }
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix<T>) -> Result<Matrix<T>, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{} rows on the right operand", self.cols),
                found: format!("{} rows", rhs.rows),
            });
        }
        let mut out: Matrix<T> = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)].clone();
                if a.is_zero_approx() {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] = out[(i, j)].clone() + a.clone() * rhs[(k, j)].clone();
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[T]) -> Result<Vec<T>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("length {}", v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                let mut acc = T::zero();
                for j in 0..self.cols {
                    acc = acc + self[(i, j)].clone() * v[j].clone();
                }
                acc
            })
            .collect())
    }

    /// Row-vector–matrix product `v * self`.
    pub fn vecmat(&self, v: &[T]) -> Result<Vec<T>, LinalgError> {
        if self.rows != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.rows),
                found: format!("length {}", v.len()),
            });
        }
        Ok((0..self.cols)
            .map(|j| {
                let mut acc = T::zero();
                for i in 0..self.rows {
                    acc = acc + v[i].clone() * self[(i, j)].clone();
                }
                acc
            })
            .collect())
    }

    /// Determinant via fraction-preserving Gaussian elimination with partial
    /// pivoting (largest absolute pivot for `f64`, first nonzero for exact
    /// scalars — both are valid; the choice only affects conditioning).
    pub fn determinant(&self) -> Result<T, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut det = T::one();
        for col in 0..n {
            let pivot_row = match Self::choose_pivot(&a, col, col) {
                Some(r) => r,
                None => return Ok(T::zero()),
            };
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                det = -det;
            }
            let pivot = a[(col, col)].clone();
            det = det * pivot.clone();
            for row in (col + 1)..n {
                let factor = a[(row, col)].div_ref(&pivot);
                if factor.is_zero_approx() {
                    continue;
                }
                a.row_sub_scaled(row, &factor, col);
            }
        }
        Ok(det)
    }

    /// Inverse via Gauss–Jordan elimination.
    pub fn inverse(&self) -> Result<Matrix<T>, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv: Matrix<T> = Matrix::identity(n);
        for col in 0..n {
            let pivot_row = Self::choose_pivot(&a, col, col).ok_or(LinalgError::Singular)?;
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                inv.swap_rows(pivot_row, col);
            }
            let pivot = a[(col, col)].clone();
            a.row_div(col, &pivot);
            inv.row_div(col, &pivot);
            for row in 0..n {
                if row == col {
                    continue;
                }
                let factor = a[(row, col)].clone();
                if factor.is_zero_approx() {
                    continue;
                }
                a.row_sub_scaled(row, &factor, col);
                inv.row_sub_scaled(row, &factor, col);
            }
        }
        Ok(inv)
    }

    /// Solve `self * x = b` for `x` by Gaussian elimination.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("right-hand side of length {}", self.rows),
                found: format!("length {}", b.len()),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut rhs = b.to_vec();
        // Forward elimination.
        for col in 0..n {
            let pivot_row = Self::choose_pivot(&a, col, col).ok_or(LinalgError::Singular)?;
            if pivot_row != col {
                a.swap_rows(pivot_row, col);
                rhs.swap(pivot_row, col);
            }
            let pivot = a[(col, col)].clone();
            for row in (col + 1)..n {
                let factor = a[(row, col)].div_ref(&pivot);
                if factor.is_zero_approx() {
                    continue;
                }
                a.row_sub_scaled(row, &factor, col);
                let (lo, hi) = rhs.split_at_mut(row);
                hi[0].sub_mul_assign(&factor, &lo[col]);
            }
        }
        // Back substitution.
        let mut x = vec![T::zero(); n];
        for row in (0..n).rev() {
            let mut acc = rhs[row].clone();
            for j in (row + 1)..n {
                acc.sub_mul_assign(&a[(row, j)], &x[j]);
            }
            let pivot = &a[(row, row)];
            if pivot.is_zero_approx() {
                return Err(LinalgError::Singular);
            }
            x[row] = acc.div_ref(pivot);
        }
        Ok(x)
    }

    /// Choose a pivot row in `col`, considering rows `start..`. Returns `None`
    /// when the whole sub-column is (approximately) zero.
    fn choose_pivot(a: &Matrix<T>, col: usize, start: usize) -> Option<usize> {
        if T::is_exact() {
            (start..a.rows).find(|&r| !a[(r, col)].is_zero_approx())
        } else {
            let mut best: Option<(usize, T)> = None;
            for r in start..a.rows {
                let mag = a[(r, col)].abs();
                match &best {
                    Some((_, b)) if *b >= mag => {}
                    _ => best = Some((r, mag)),
                }
            }
            match best {
                Some((r, mag)) if !mag.is_zero_approx() => Some(r),
                _ => None,
            }
        }
    }

    /// Swap two rows in place.
    ///
    /// # Panics
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        assert!(r1 < self.rows && r2 < self.rows, "row index out of bounds");
        if r1 == r2 {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(r1 * self.cols + j, r2 * self.cols + j);
        }
    }

    /// True iff every row sums to one and every entry is non-negative
    /// (up to the scalar tolerance): a Markov / post-processing matrix.
    #[must_use]
    pub fn is_row_stochastic(&self) -> bool {
        self.row_iter().all(|row| {
            let sum = row.iter().cloned().fold(T::zero(), |a, b| a + b);
            sum.approx_eq(&T::one()) && row.iter().all(|v| !v.is_negative_approx())
        })
    }

    /// True iff every row sums to one, with **no** sign condition on the
    /// entries ("generalized stochastic" in the paper's terminology, after
    /// Poole's *stochastic group*).
    #[must_use]
    pub fn is_generalized_stochastic(&self) -> bool {
        self.row_iter().all(|row| {
            let sum = row.iter().cloned().fold(T::zero(), |a, b| a + b);
            sum.approx_eq(&T::one())
        })
    }

    /// Largest absolute difference between corresponding entries of two
    /// same-shaped matrices; useful for approximate comparisons in f64 tests.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> Result<T, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", other.rows, other.cols),
            });
        }
        let mut best = T::zero();
        for (a, b) in self.data.iter().zip(other.data.iter()) {
            let d = (a.clone() - b.clone()).abs();
            if d > best {
                best = d;
            }
        }
        Ok(best)
    }

    /// Map every entry through `f`, producing a matrix over a possibly
    /// different scalar type.
    #[must_use]
    pub fn map<U: Scalar>(&self, f: impl FnMut(&T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Flat row-major access to the underlying entries.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &self.data[row * self.cols + col]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &mut self.data[row * self.cols + col]
    }
}

impl<T: Scalar> Add for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.rows, rhs.rows, "row mismatch in matrix addition");
        assert_eq!(self.cols, rhs.cols, "column mismatch in matrix addition");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a.clone() + b.clone())
                .collect(),
        }
    }
}

impl<T: Scalar> Sub for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.rows, rhs.rows, "row mismatch in matrix subtraction");
        assert_eq!(self.cols, rhs.cols, "column mismatch in matrix subtraction");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a.clone() - b.clone())
                .collect(),
        }
    }
}

impl<T: Scalar> Mul for &Matrix<T> {
    type Output = Matrix<T>;
    fn mul(self, rhs: &Matrix<T>) -> Matrix<T> {
        self.matmul(rhs)
            .expect("dimension mismatch in matrix product")
    }
}

impl<T: Scalar> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compute a column width from the rendered entries for readable output.
        let rendered: Vec<Vec<String>> = self
            .row_iter()
            .map(|row| row.iter().map(|v| v.to_string()).collect())
            .collect();
        let width = rendered
            .iter()
            .flatten()
            .map(|s| s.len())
            .max()
            .unwrap_or(1);
        for row in &rendered {
            write!(f, "[ ")?;
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}")?;
            }
            writeln!(f, " ]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::{rat, Rational};

    fn rmat(rows: Vec<Vec<(i64, i64)>>) -> Matrix<Rational> {
        Matrix::from_rows(
            rows.into_iter()
                .map(|r| r.into_iter().map(|(n, d)| rat(n, d)).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let m: Matrix<f64> = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.get(1, 0), Some(&3.0));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn from_rows_rejects_bad_shapes() {
        assert_eq!(
            Matrix::<f64>::from_rows(vec![]).unwrap_err(),
            LinalgError::Empty
        );
        assert_eq!(
            Matrix::<f64>::from_rows(vec![vec![]]).unwrap_err(),
            LinalgError::Empty
        );
        assert_eq!(
            Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err(),
            LinalgError::RaggedRows
        );
    }

    #[test]
    fn set_bounds_checked() {
        let mut m: Matrix<f64> = Matrix::zeros(2, 2);
        assert!(m.set(0, 0, 5.0).is_ok());
        assert!(matches!(
            m.set(2, 0, 1.0),
            Err(LinalgError::IndexOutOfBounds { index: 2, bound: 2 })
        ));
        assert!(matches!(
            m.set(0, 3, 1.0),
            Err(LinalgError::IndexOutOfBounds { index: 3, bound: 2 })
        ));
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let m = rmat(vec![vec![(1, 2), (1, 3)], vec![(2, 5), (3, 7)]]);
        let id = Matrix::<Rational>::identity(2);
        assert_eq!(m.matmul(&id).unwrap(), m);
        assert_eq!(id.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product_and_dimension_errors() {
        let a: Matrix<f64> =
            Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let b: Matrix<f64> =
            Matrix::from_rows(vec![vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(vec![vec![58.0, 64.0], vec![139.0, 154.0]]).unwrap()
        );
        assert!(b.matmul(&b).is_err());
    }

    #[test]
    fn matvec_and_vecmat() {
        let a: Matrix<f64> = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.vecmat(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a: Matrix<f64> =
            Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn determinant_exact_small_cases() {
        let m = rmat(vec![vec![(1, 1), (2, 1)], vec![(3, 1), (4, 1)]]);
        assert_eq!(m.determinant().unwrap(), rat(-2, 1));
        let singular = rmat(vec![vec![(1, 1), (2, 1)], vec![(2, 1), (4, 1)]]);
        assert_eq!(singular.determinant().unwrap(), Rational::zero());
        let id = Matrix::<Rational>::identity(5);
        assert_eq!(id.determinant().unwrap(), Rational::one());
        let non_square: Matrix<Rational> = Matrix::zeros(2, 3);
        assert!(non_square.determinant().is_err());
    }

    #[test]
    fn determinant_needs_row_swap() {
        // Leading zero forces pivoting.
        let m = rmat(vec![
            vec![(0, 1), (1, 1), (2, 1)],
            vec![(1, 1), (0, 1), (1, 1)],
            vec![(2, 1), (1, 1), (0, 1)],
        ]);
        // det = 0*... - expand: known value 4? compute: rows (0,1,2;1,0,1;2,1,0) det = 4.
        assert_eq!(m.determinant().unwrap(), rat(4, 1));
    }

    #[test]
    fn inverse_times_original_is_identity_exact() {
        let m = rmat(vec![
            vec![(2, 1), (1, 1), (0, 1)],
            vec![(1, 1), (3, 1), (1, 1)],
            vec![(0, 1), (1, 1), (4, 1)],
        ]);
        let inv = m.inverse().unwrap();
        assert_eq!(m.matmul(&inv).unwrap(), Matrix::identity(3));
        assert_eq!(inv.matmul(&m).unwrap(), Matrix::identity(3));
    }

    #[test]
    fn inverse_of_singular_fails() {
        let singular = rmat(vec![vec![(1, 1), (2, 1)], vec![(2, 1), (4, 1)]]);
        assert_eq!(singular.inverse().unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn solve_known_system() {
        let m = rmat(vec![vec![(2, 1), (1, 1)], vec![(1, 1), (3, 1)]]);
        // Solve [2 1; 1 3] x = [5; 10]  =>  x = [1, 3].
        let x = m.solve(&[rat(5, 1), rat(10, 1)]).unwrap();
        assert_eq!(x, vec![rat(1, 1), rat(3, 1)]);
        assert!(m.solve(&[rat(1, 1)]).is_err());
        let singular = rmat(vec![vec![(1, 1), (2, 1)], vec![(2, 1), (4, 1)]]);
        assert!(singular.solve(&[rat(1, 1), rat(2, 1)]).is_err());
    }

    #[test]
    fn solve_f64_with_pivoting() {
        let m: Matrix<f64> = Matrix::from_rows(vec![
            vec![1e-12, 1.0, 0.0],
            vec![1.0, 1.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ])
        .unwrap();
        let x = m.solve(&[1.0, 6.0, 9.0]).unwrap();
        let back = m.matvec(&x).unwrap();
        for (b, expected) in back.iter().zip([1.0, 6.0, 9.0]) {
            assert!((b - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn stochasticity_checks() {
        let stochastic = rmat(vec![vec![(1, 2), (1, 2)], vec![(1, 4), (3, 4)]]);
        assert!(stochastic.is_row_stochastic());
        assert!(stochastic.is_generalized_stochastic());
        let generalized = rmat(vec![vec![(3, 2), (-1, 2)], vec![(1, 4), (3, 4)]]);
        assert!(!generalized.is_row_stochastic());
        assert!(generalized.is_generalized_stochastic());
        let neither = rmat(vec![vec![(1, 2), (1, 4)], vec![(1, 4), (3, 4)]]);
        assert!(!neither.is_row_stochastic());
        assert!(!neither.is_generalized_stochastic());
    }

    #[test]
    fn scale_add_sub() {
        let a = rmat(vec![vec![(1, 2), (1, 3)], vec![(1, 4), (1, 5)]]);
        let doubled = a.scale(&rat(2, 1));
        assert_eq!(doubled[(0, 0)], rat(1, 1));
        assert_eq!(&doubled - &a, a);
        assert_eq!(&a + &a, doubled);
    }

    #[test]
    fn map_between_scalar_types() {
        let a = rmat(vec![vec![(1, 2), (1, 4)], vec![(3, 4), (1, 1)]]);
        let f: Matrix<f64> = a.map(|v| v.to_f64());
        assert_eq!(f[(0, 0)], 0.5);
        assert_eq!(f[(1, 1)], 1.0);
    }

    #[test]
    fn display_renders_fractions() {
        let a = rmat(vec![vec![(1, 2), (1, 3)]]);
        let s = a.to_string();
        assert!(s.contains("1/2"));
        assert!(s.contains("1/3"));
    }

    #[test]
    fn max_abs_diff_detects_perturbations() {
        let a: Matrix<f64> = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut b = a.clone();
        b[(1, 1)] = 4.5;
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        let wrong: Matrix<f64> = Matrix::zeros(3, 2);
        assert!(a.max_abs_diff(&wrong).is_err());
    }
}
