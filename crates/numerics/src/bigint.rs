//! Arbitrary-precision signed integers.
//!
//! The representation is a sign flag plus a little-endian vector of 64-bit
//! limbs. The magnitude is always normalized: no trailing zero limbs, and a
//! zero value is represented by an empty limb vector with [`Sign::Zero`].
//!
//! The exact LP tableaus this crate feeds spend most of their life on values
//! that fit in one machine word, so every ring operation (add/sub/mul/cmp,
//! plus gcd and div_rem) takes an inline **single-limb fast path** before
//! falling back to the general limb loops. The multi-limb substrate is
//! schoolbook multiplication, Knuth Algorithm D long division (TAOCP 4.3.1),
//! and an in-place binary GCD — quadratic algorithms are more than fast
//! enough for the few hundred bits that arise when verifying privacy
//! mechanisms exactly.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// Flip the sign; zero stays zero.
    #[must_use]
    pub fn negate(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    /// Product-of-signs rule.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // not an `ops::Mul` impl: takes/returns plain signs
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Positive, Sign::Positive) | (Sign::Negative, Sign::Negative) => Sign::Positive,
            _ => Sign::Negative,
        }
    }
}

/// An arbitrary-precision signed integer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian 64-bit limbs of the magnitude; normalized (no trailing zeros).
    limbs: Vec<u64>,
}

/// Error returned when parsing a [`BigInt`] or
/// [`Rational`](crate::rational::Rational) from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNumError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ParseNumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseNumError {}

// ---------------------------------------------------------------------------
// Limb-level helpers (magnitude arithmetic on &[u64])
// ---------------------------------------------------------------------------

fn trim(limbs: &mut Vec<u64>) {
    while limbs.last() == Some(&0) {
        limbs.pop();
    }
}

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let x = long[i] as u128;
        let y = if i < short.len() { short[i] as u128 } else { 0 };
        let sum = x + y + carry as u128;
        out.push(sum as u64);
        carry = (sum >> 64) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Requires `a >= b` (as magnitudes).
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let x = a[i] as u128;
        let y = if i < b.len() { b[i] as u128 } else { 0 };
        let rhs = y + borrow as u128;
        if x >= rhs {
            out.push((x - rhs) as u64);
            borrow = 0;
        } else {
            out.push((x + (1u128 << 64) - rhs) as u64);
            borrow = 1;
        }
    }
    trim(&mut out);
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

/// Divide magnitude by a single limb, returning (quotient, remainder).
fn mag_div_limb(a: &[u64], d: u64) -> (Vec<u64>, u64) {
    assert!(d != 0, "division by zero");
    let mut out = vec![0u64; a.len()];
    let mut rem = 0u128;
    for i in (0..a.len()).rev() {
        let cur = (rem << 64) | a[i] as u128;
        out[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    trim(&mut out);
    (out, rem as u64)
}

fn mag_shl(a: &[u64], bits: usize) -> Vec<u64> {
    if a.is_empty() {
        return Vec::new();
    }
    let limb_shift = bits / 64;
    let bit_shift = bits % 64;
    let mut out = vec![0u64; a.len() + limb_shift + 1];
    for (i, &x) in a.iter().enumerate() {
        if bit_shift == 0 {
            out[i + limb_shift] |= x;
        } else {
            out[i + limb_shift] |= x << bit_shift;
            out[i + limb_shift + 1] |= x >> (64 - bit_shift);
        }
    }
    trim(&mut out);
    out
}

fn mag_bits(a: &[u64]) -> usize {
    match a.last() {
        None => 0,
        Some(&top) => 64 * (a.len() - 1) + (64 - top.leading_zeros() as usize),
    }
}

/// Subtract `b` from `a` in place. Requires `a >= b` (as magnitudes).
fn mag_sub_in_place(a: &mut Vec<u64>, b: &[u64]) {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let x = a[i] as u128;
        let y = if i < b.len() { b[i] as u128 } else { 0 };
        let rhs = y + borrow as u128;
        if x >= rhs {
            a[i] = (x - rhs) as u64;
            borrow = 0;
        } else {
            a[i] = (x + (1u128 << 64) - rhs) as u64;
            borrow = 1;
        }
        if borrow == 0 && i >= b.len() {
            break;
        }
    }
    trim(a);
}

/// Shift a magnitude right by `bits` in place (arbitrary shift counts).
fn mag_shr_in_place(a: &mut Vec<u64>, bits: usize) {
    let limb_shift = bits / 64;
    let bit_shift = bits % 64;
    if limb_shift >= a.len() {
        a.clear();
        return;
    }
    if limb_shift > 0 {
        a.drain(..limb_shift);
    }
    if bit_shift > 0 {
        let len = a.len();
        for i in 0..len {
            let mut v = a[i] >> bit_shift;
            if i + 1 < len {
                v |= a[i + 1] << (64 - bit_shift);
            }
            a[i] = v;
        }
    }
    trim(a);
}

/// Number of trailing zero bits of a non-zero magnitude.
fn mag_trailing_zeros(a: &[u64]) -> usize {
    for (i, &l) in a.iter().enumerate() {
        if l != 0 {
            return i * 64 + l.trailing_zeros() as usize;
        }
    }
    0
}

/// Binary GCD on machine words.
fn u64_gcd(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Long division on magnitudes via Knuth's Algorithm D (TAOCP 4.3.1) with
/// 64-bit limbs. Returns (quotient, remainder). The previous implementation
/// was a bit-by-bit shift/subtract loop — O(bits · limbs) with an allocation
/// per bit — which dominated exact-LP profiles through `Rational`
/// normalization; Algorithm D is O(limbs²) with no per-step allocation.
fn mag_divrem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert!(!b.is_empty(), "division by zero");
    if mag_cmp(a, b) == Ordering::Less {
        return (Vec::new(), a.to_vec());
    }
    if b.len() == 1 {
        let (q, r) = mag_div_limb(a, b[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }

    // Normalize so the divisor's top limb has its high bit set; this keeps
    // the 2-limb quotient estimate within one of the true digit.
    let shift = b.last().expect("non-empty divisor").leading_zeros() as usize;
    let bn = mag_shl(b, shift);
    debug_assert_eq!(bn.len(), b.len());
    let mut an = mag_shl(a, shift);
    an.resize(a.len() + 1, 0);

    let n = bn.len();
    let m = an.len() - n; // number of quotient digits
    let top = bn[n - 1] as u128;
    let next = bn[n - 2] as u128;
    let mut q = vec![0u64; m];

    for j in (0..m).rev() {
        // Estimate the quotient digit from the top limbs.
        let num = ((an[j + n] as u128) << 64) | an[j + n - 1] as u128;
        let mut qhat = num / top;
        let mut rhat = num % top;
        while qhat >> 64 != 0 || qhat * next > ((rhat << 64) | an[j + n - 2] as u128) {
            qhat -= 1;
            rhat += top;
            if rhat >> 64 != 0 {
                break;
            }
        }

        // an[j..=j+n] -= qhat * bn
        let mut mul_carry: u128 = 0;
        let mut borrow: u64 = 0;
        for i in 0..n {
            let p = qhat * bn[i] as u128 + mul_carry;
            mul_carry = p >> 64;
            let (d1, b1) = an[j + i].overflowing_sub(p as u64);
            let (d2, b2) = d1.overflowing_sub(borrow);
            an[j + i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        let (d1, b1) = an[j + n].overflowing_sub(mul_carry as u64);
        let (d2, b2) = d1.overflowing_sub(borrow);
        an[j + n] = d2;

        if b1 || b2 {
            // The estimate was one too large (rare): add the divisor back.
            qhat -= 1;
            let mut carry: u128 = 0;
            for i in 0..n {
                let s = an[j + i] as u128 + bn[i] as u128 + carry;
                an[j + i] = s as u64;
                carry = s >> 64;
            }
            an[j + n] = an[j + n].wrapping_add(carry as u64);
        }
        q[j] = qhat as u64;
    }

    let mut rem = an[..n].to_vec();
    trim(&mut rem);
    mag_shr_in_place(&mut rem, shift);
    trim(&mut q);
    (q, rem)
}

// ---------------------------------------------------------------------------
// BigInt public API
// ---------------------------------------------------------------------------

impl BigInt {
    /// The integer 0.
    #[must_use]
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            limbs: Vec::new(),
        }
    }

    /// The integer 1.
    #[must_use]
    pub fn one() -> BigInt {
        BigInt::from(1i64)
    }

    /// Construct from a sign and raw little-endian limbs (normalizing).
    #[must_use]
    pub fn from_sign_limbs(sign: Sign, mut limbs: Vec<u64>) -> BigInt {
        trim(&mut limbs);
        if limbs.is_empty() {
            return BigInt::zero();
        }
        let sign = if sign == Sign::Zero {
            Sign::Positive
        } else {
            sign
        };
        BigInt { sign, limbs }
    }

    /// The sign of this integer.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// True iff the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True iff the value is one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.limbs == [1]
    }

    /// True iff the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// True iff the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> BigInt {
        if self.sign == Sign::Negative {
            BigInt {
                sign: Sign::Positive,
                limbs: self.limbs.clone(),
            }
        } else {
            self.clone()
        }
    }

    /// Number of significant bits of the magnitude (0 for zero).
    #[must_use]
    pub fn bit_length(&self) -> usize {
        mag_bits(&self.limbs)
    }

    /// True iff the magnitude is even.
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l % 2 == 0)
    }

    /// Shift the magnitude left by `bits` (sign preserved).
    #[must_use]
    pub fn shl_bits(&self, bits: usize) -> BigInt {
        BigInt::from_sign_limbs(self.sign, mag_shl(&self.limbs, bits))
    }

    /// Shift the magnitude right by `bits` (truncating towards zero in magnitude).
    #[must_use]
    pub fn shr_bits(&self, bits: usize) -> BigInt {
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        if limb_shift >= self.limbs.len() {
            return BigInt::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut v = self.limbs[i] >> bit_shift;
            if bit_shift != 0 && i + 1 < self.limbs.len() {
                v |= self.limbs[i + 1] << (64 - bit_shift);
            }
            out.push(v);
        }
        BigInt::from_sign_limbs(self.sign, out)
    }

    /// Euclidean division returning `(quotient, remainder)` with
    /// `self = quotient * divisor + remainder` and the remainder having the
    /// sign of `self` (truncated division, like Rust's `/` and `%` on
    /// primitive integers).
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn div_rem(&self, divisor: &BigInt) -> (BigInt, BigInt) {
        assert!(!divisor.is_zero(), "BigInt division by zero");
        let q_sign = self.sign.mul(divisor.sign);
        let r_sign = self.sign;
        // Single-limb fast path: machine division.
        if self.limbs.len() <= 1 && divisor.limbs.len() <= 1 {
            let a = self.limbs.first().copied().unwrap_or(0);
            let d = divisor.limbs[0];
            return (
                BigInt::from_sign_limbs(q_sign, vec![a / d]),
                BigInt::from_sign_limbs(r_sign, vec![a % d]),
            );
        }
        let (q_mag, r_mag) = mag_divrem(&self.limbs, &divisor.limbs);
        (
            BigInt::from_sign_limbs(q_sign, q_mag),
            BigInt::from_sign_limbs(r_sign, r_mag),
        )
    }

    /// Greatest common divisor of the magnitudes (always non-negative).
    ///
    /// Machine-word inputs take a branch-free `u64` binary-GCD fast path; the
    /// multi-limb case runs binary GCD **in place** on two limb buffers
    /// (shift/subtract, no allocation per round) and drops to the word path
    /// as soon as both operands fit in one limb.
    #[must_use]
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        if self.is_zero() {
            return other.abs();
        }
        if other.is_zero() {
            return self.abs();
        }
        if self.limbs.len() == 1 && other.limbs.len() == 1 {
            return BigInt::from(u64_gcd(self.limbs[0], other.limbs[0]));
        }

        let mut a = self.limbs.clone();
        let mut b = other.limbs.clone();
        let a_tz = mag_trailing_zeros(&a);
        let b_tz = mag_trailing_zeros(&b);
        let shift = a_tz.min(b_tz);
        mag_shr_in_place(&mut a, a_tz);
        mag_shr_in_place(&mut b, b_tz);
        loop {
            // a and b are both odd here.
            if a.len() == 1 && b.len() == 1 {
                let g = BigInt::from(u64_gcd(a[0], b[0]));
                return g.shl_bits(shift);
            }
            match mag_cmp(&a, &b) {
                Ordering::Equal => {
                    return BigInt::from_sign_limbs(Sign::Positive, a).shl_bits(shift);
                }
                Ordering::Less => std::mem::swap(&mut a, &mut b),
                Ordering::Greater => {}
            }
            mag_sub_in_place(&mut a, &b);
            let tz = mag_trailing_zeros(&a);
            mag_shr_in_place(&mut a, tz);
        }
    }

    /// Number of trailing zero bits of the magnitude (0 for zero).
    #[must_use]
    pub fn trailing_zeros(&self) -> usize {
        mag_trailing_zeros(&self.limbs)
    }

    /// Raise to a non-negative integer power.
    #[must_use]
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Convert to `i64` if the value fits.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => {
                let mag = self.limbs[0];
                match self.sign {
                    Sign::Positive => i64::try_from(mag).ok(),
                    Sign::Negative => {
                        if mag <= i64::MAX as u64 + 1 {
                            Some(-(mag as i128) as i64)
                        } else {
                            None
                        }
                    }
                    Sign::Zero => Some(0),
                }
            }
            _ => None,
        }
    }

    /// Convert to `i128` if the value fits.
    #[must_use]
    pub fn to_i128(&self) -> Option<i128> {
        if self.limbs.len() > 2 {
            return None;
        }
        let mut mag: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            mag |= (l as u128) << (64 * i);
        }
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i128::try_from(mag).ok(),
            Sign::Negative => {
                if mag <= i128::MAX as u128 + 1 {
                    Some(mag.wrapping_neg() as i128)
                } else {
                    None
                }
            }
        }
    }

    /// Best-effort conversion to `f64` (may lose precision; never panics).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_length();
        let val = if bits <= 64 {
            self.limbs.first().copied().unwrap_or(0) as f64
        } else {
            // Take the top 64 bits and scale.
            let shift = bits - 64;
            let top = self.shr_bits(shift);
            let mantissa = top.limbs.first().copied().unwrap_or(0) as f64;
            mantissa * 2f64.powi(shift as i32)
        };
        match self.sign {
            Sign::Negative => -val,
            _ => val,
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let v = v as i128;
                if v == 0 {
                    return BigInt::zero();
                }
                let sign = if v < 0 { Sign::Negative } else { Sign::Positive };
                let mag = v.unsigned_abs();
                let mut limbs = vec![mag as u64, (mag >> 64) as u64];
                trim(&mut limbs);
                BigInt { sign, limbs }
            }
        }
    )*};
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let v = v as u128;
                if v == 0 {
                    return BigInt::zero();
                }
                let mut limbs = vec![v as u64, (v >> 64) as u64];
                trim(&mut limbs);
                BigInt { sign: Sign::Positive, limbs }
            }
        }
    )*};
}

impl_from_signed!(i8, i16, i32, i64, i128, isize);
impl_from_unsigned!(u8, u16, u32, u64, u128, usize);

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Negative, Negative) => mag_cmp(&other.limbs, &self.limbs),
            (Negative, _) => Ordering::Less,
            (Zero, Negative) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Positive) => Ordering::Less,
            (Positive, Positive) => mag_cmp(&self.limbs, &other.limbs),
            (Positive, _) => Ordering::Greater,
        }
    }
}

// Arithmetic on references; owned variants delegate.
//
// All three ring operations take a **small-value fast path** when both
// operands fit in a single limb: the arithmetic happens in one or two machine
// operations on `i128`/`u128` before falling back to the general limb loops.
// LP tableaus over `Rational` spend most of their life in exactly this regime,
// so the fast path is the difference between a pivot being a handful of ALU
// instructions and a tour through heap-allocating vector code.

impl BigInt {
    /// Signed `i128` view of a value known to fit in one limb.
    #[inline]
    fn small_i128(&self) -> i128 {
        let mag = self.limbs.first().copied().unwrap_or(0) as i128;
        match self.sign {
            Sign::Negative => -mag,
            _ => mag,
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.limbs.len() <= 1 && rhs.limbs.len() <= 1 {
            return BigInt::from(self.small_i128() + rhs.small_i128());
        }
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_limbs(a, mag_add(&self.limbs, &rhs.limbs)),
            _ => {
                // Different signs: subtract smaller magnitude from larger.
                match mag_cmp(&self.limbs, &rhs.limbs) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => {
                        BigInt::from_sign_limbs(self.sign, mag_sub(&self.limbs, &rhs.limbs))
                    }
                    Ordering::Less => {
                        BigInt::from_sign_limbs(rhs.sign, mag_sub(&rhs.limbs, &self.limbs))
                    }
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        if self.limbs.len() <= 1 && rhs.limbs.len() <= 1 {
            return BigInt::from(self.small_i128() - rhs.small_i128());
        }
        // Mirror of addition with the right-hand sign flipped, without
        // materializing a negated clone of `rhs`.
        match (self.sign, rhs.sign) {
            (_, Sign::Zero) => self.clone(),
            (Sign::Zero, _) => {
                let mut out = rhs.clone();
                out.sign = out.sign.negate();
                out
            }
            (a, b) if a != b => BigInt::from_sign_limbs(a, mag_add(&self.limbs, &rhs.limbs)),
            _ => match mag_cmp(&self.limbs, &rhs.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_sign_limbs(self.sign, mag_sub(&self.limbs, &rhs.limbs))
                }
                Ordering::Less => {
                    BigInt::from_sign_limbs(self.sign.negate(), mag_sub(&rhs.limbs, &self.limbs))
                }
            },
        }
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.limbs.len() <= 1 && rhs.limbs.len() <= 1 {
            let mag = self.limbs.first().copied().unwrap_or(0) as u128
                * rhs.limbs.first().copied().unwrap_or(0) as u128;
            let mut limbs = vec![mag as u64, (mag >> 64) as u64];
            trim(&mut limbs);
            return BigInt::from_sign_limbs(self.sign.mul(rhs.sign), limbs);
        }
        BigInt::from_sign_limbs(self.sign.mul(rhs.sign), mag_mul(&self.limbs, &rhs.limbs))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);
forward_owned_binop!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl AddAssign for BigInt {
    fn add_assign(&mut self, rhs: BigInt) {
        *self = &*self + &rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl SubAssign for BigInt {
    fn sub_assign(&mut self, rhs: BigInt) {
        *self = &*self - &rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl MulAssign for BigInt {
    fn mul_assign(&mut self, rhs: BigInt) {
        *self = &*self * &rhs;
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.negate();
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut mag = self.limbs.clone();
        // Peel off 19 decimal digits at a time (10^19 < 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        while !mag.is_empty() {
            let (q, r) = mag_div_limb(&mag, CHUNK);
            digits.push(r);
            mag = q;
        }
        let mut s = String::new();
        if self.sign == Sign::Negative {
            s.push('-');
        }
        s.push_str(&digits.pop().unwrap_or(0).to_string());
        while let Some(d) = digits.pop() {
            s.push_str(&format!("{d:019}"));
        }
        write!(f, "{s}")
    }
}

impl FromStr for BigInt {
    type Err = ParseNumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseNumError {
                message: "empty string".to_string(),
            });
        }
        let (negative, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseNumError {
                message: format!("invalid integer literal: {s:?}"),
            });
        }
        let mut acc = BigInt::zero();
        let ten = BigInt::from(10u64);
        for b in digits.bytes() {
            acc = &acc * &ten + BigInt::from((b - b'0') as u64);
        }
        if negative {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for BigInt {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for BigInt {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigInt::zero().is_zero());
        assert!(BigInt::one().is_one());
        assert!(!BigInt::one().is_zero());
        assert_eq!(BigInt::zero(), BigInt::from(0i64));
        assert_eq!(BigInt::default(), BigInt::zero());
    }

    #[test]
    fn from_primitives_roundtrip_small() {
        for v in [-3i64, -1, 0, 1, 2, 41, i64::MAX, i64::MIN + 1] {
            assert_eq!(BigInt::from(v).to_i64(), Some(v));
        }
        assert_eq!(BigInt::from(u64::MAX).to_i128(), Some(u64::MAX as i128));
    }

    #[test]
    fn addition_and_subtraction_mixed_signs() {
        assert_eq!(bi(5) + bi(7), bi(12));
        assert_eq!(bi(5) + bi(-7), bi(-2));
        assert_eq!(bi(-5) + bi(7), bi(2));
        assert_eq!(bi(-5) + bi(-7), bi(-12));
        assert_eq!(bi(5) - bi(7), bi(-2));
        assert_eq!(bi(7) - bi(7), bi(0));
        assert_eq!(bi(0) - bi(7), bi(-7));
    }

    #[test]
    fn multiplication_signs_and_carry() {
        assert_eq!(bi(6) * bi(7), bi(42));
        assert_eq!(bi(-6) * bi(7), bi(-42));
        assert_eq!(bi(-6) * bi(-7), bi(42));
        assert_eq!(bi(0) * bi(123456), bi(0));
        let big = BigInt::from(u64::MAX) * BigInt::from(u64::MAX);
        assert_eq!(
            big.to_string(),
            "340282366920938463426481119284349108225" // (2^64-1)^2
        );
    }

    #[test]
    fn division_truncates_towards_zero() {
        assert_eq!(bi(7).div_rem(&bi(2)), (bi(3), bi(1)));
        assert_eq!(bi(-7).div_rem(&bi(2)), (bi(-3), bi(-1)));
        assert_eq!(bi(7).div_rem(&bi(-2)), (bi(-3), bi(1)));
        assert_eq!(bi(-7).div_rem(&bi(-2)), (bi(3), bi(-1)));
        assert_eq!(bi(6) / bi(3), bi(2));
        assert_eq!(bi(6) % bi(4), bi(2));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = bi(1).div_rem(&bi(0));
    }

    #[test]
    fn multi_limb_division() {
        let a: BigInt = "123456789012345678901234567890123456789".parse().unwrap();
        let b: BigInt = "9876543210987654321".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&q * &b + &r, a);
        assert!(r < b);
        assert!(!r.is_negative());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
            "99999999999999999999999999999999999999999999",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("abc".parse::<BigInt>().is_err());
        assert!("12x3".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("1.5".parse::<BigInt>().is_err());
    }

    #[test]
    fn ordering_is_total_and_sign_aware() {
        assert!(bi(-10) < bi(-2));
        assert!(bi(-2) < bi(0));
        assert!(bi(0) < bi(3));
        assert!(bi(3) < bi(10));
        let big: BigInt = "99999999999999999999999999".parse().unwrap();
        assert!(bi(5) < big);
        assert!(-big.clone() < bi(5));
    }

    #[test]
    fn gcd_matches_euclid_examples() {
        assert_eq!(bi(12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(-12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(5).gcd(&bi(0)), bi(5));
        assert_eq!(bi(17).gcd(&bi(13)), bi(1));
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let b: BigInt = "9876543210".parse().unwrap();
        let g = a.gcd(&b);
        assert_eq!((&a % &g), BigInt::zero());
        assert_eq!((&b % &g), BigInt::zero());
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(-2).pow(3), bi(-8));
        assert_eq!(bi(7).pow(0), bi(1));
        assert_eq!(bi(0).pow(5), bi(0));
        assert_eq!(bi(10).pow(25).to_string(), format!("1{}", "0".repeat(25)));
    }

    #[test]
    fn shifts_are_multiplication_by_powers_of_two() {
        assert_eq!(bi(5).shl_bits(3), bi(40));
        assert_eq!(bi(40).shr_bits(3), bi(5));
        assert_eq!(bi(41).shr_bits(3), bi(5));
        assert_eq!(bi(1).shl_bits(130).shr_bits(130), bi(1));
        assert_eq!(bi(0).shl_bits(64), bi(0));
    }

    #[test]
    fn bit_length_and_trailing_zeros() {
        assert_eq!(bi(0).bit_length(), 0);
        assert_eq!(bi(1).bit_length(), 1);
        assert_eq!(bi(255).bit_length(), 8);
        assert_eq!(bi(256).bit_length(), 9);
        assert_eq!(bi(256).trailing_zeros(), 8);
        assert_eq!(bi(12).trailing_zeros(), 2);
    }

    #[test]
    fn to_f64_is_close_for_large_values() {
        let v: BigInt = "123456789012345678901234567890".parse().unwrap();
        let f = v.to_f64();
        let expected = 1.2345678901234568e29;
        assert!((f - expected).abs() / expected < 1e-12);
        assert_eq!(bi(-42).to_f64(), -42.0);
        assert_eq!(bi(0).to_f64(), 0.0);
    }
}
