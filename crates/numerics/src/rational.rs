//! Exact rational numbers backed by [`BigInt`].
//!
//! A [`Rational`] is always stored in lowest terms with a strictly positive
//! denominator, so structural equality coincides with numeric equality.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bigint::{BigInt, ParseNumError, Sign};

/// An exact rational number `numerator / denominator` in lowest terms, with a
/// strictly positive denominator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// The rational 0.
    #[must_use]
    pub fn zero() -> Rational {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational 1.
    #[must_use]
    pub fn one() -> Rational {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Construct `num / den` and normalize.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    #[must_use]
    pub fn new(num: BigInt, den: BigInt) -> Rational {
        assert!(!den.is_zero(), "Rational with zero denominator");
        let mut r = Rational { num, den };
        r.normalize();
        r
    }

    /// Construct from machine integers, e.g. `Rational::from_ratio(1, 4)`.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    #[must_use]
    pub fn from_ratio(num: i64, den: i64) -> Rational {
        Rational::new(BigInt::from(num), BigInt::from(den))
    }

    /// Construct the integer `v` as a rational.
    #[must_use]
    pub fn from_int(v: i64) -> Rational {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }

    fn normalize(&mut self) {
        if self.den.is_negative() {
            self.num = -std::mem::take(&mut self.num);
            self.den = -std::mem::take(&mut self.den);
        }
        if self.num.is_zero() {
            self.den = BigInt::one();
            return;
        }
        // Integer fast path: nothing to reduce against a unit denominator.
        if self.den.is_one() {
            return;
        }
        let g = self.num.gcd(&self.den);
        if !g.is_one() {
            self.num = &self.num / &g;
            self.den = &self.den / &g;
        }
    }

    /// Internal constructor for values already in lowest terms with a
    /// positive denominator (the arithmetic fast paths guarantee this by
    /// construction, skipping the normalization gcd).
    #[inline]
    fn from_reduced(num: BigInt, den: BigInt) -> Rational {
        debug_assert!(
            den.is_positive(),
            "from_reduced needs a positive denominator"
        );
        debug_assert!(
            num.gcd(&den).is_one() || num.is_zero(),
            "from_reduced needs coprime parts"
        );
        if num.is_zero() {
            return Rational::zero();
        }
        Rational { num, den }
    }

    /// Numerator (sign-carrying).
    #[must_use]
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    #[must_use]
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// True iff the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff the value is one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// True iff the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// True iff the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True iff the value is an integer (denominator 1).
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign of the value.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        // Already in lowest terms; only the sign needs to move.
        if self.num.is_negative() {
            Rational {
                num: -self.den.clone(),
                den: -self.num.clone(),
            }
        } else {
            Rational {
                num: self.den.clone(),
                den: self.num.clone(),
            }
        }
    }

    /// Fused `self - factor·x` in one normalization.
    ///
    /// This is the innermost operation of the revised simplex's eta-vector
    /// kernels (FTRAN/BTRAN apply `w_i ← w_i - t_i·z` across every nonzero of
    /// an eta column): computing it as `mul` then `sub` runs up to four gcd
    /// reductions and several `BigInt` allocations. When every component fits
    /// a single limb comfortably (`|v| < 2³¹`, so all cross products fit
    /// `i128`) the fused form computes the unreduced `(a·d·f − c·e·b) /
    /// (b·d·f)` in machine integers and reduces with **one** `u128` gcd.
    /// Values outside the fast-path window fall back to the generic
    /// cross-cancelling `mul`/`sub` path; both paths return the identical
    /// canonical rational.
    #[must_use]
    pub fn sub_mul(&self, factor: &Rational, x: &Rational) -> Rational {
        if let Some(out) = fused_mul_add_fast(self, factor, x, true) {
            return out;
        }
        self - &(factor * x)
    }

    /// Fused `self + factor·x`; see [`Rational::sub_mul`] for the fast path.
    #[must_use]
    pub fn add_mul(&self, factor: &Rational, x: &Rational) -> Rational {
        if let Some(out) = fused_mul_add_fast(self, factor, x, false) {
            return out;
        }
        self + &(factor * x)
    }

    /// Raise to an integer power (negative exponents invert; `0^0 = 1`).
    ///
    /// # Panics
    /// Panics when raising zero to a negative power.
    #[must_use]
    pub fn pow(&self, exp: i32) -> Rational {
        if exp == 0 {
            return Rational::one();
        }
        let mag = exp.unsigned_abs();
        let base = Rational {
            num: self.num.pow(mag),
            den: self.den.pow(mag),
        };
        if exp < 0 {
            base.recip()
        } else {
            base
        }
    }

    /// Smaller of two rationals (by value).
    #[must_use]
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Larger of two rationals (by value).
    #[must_use]
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Best-effort conversion to `f64`.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        if self.num.is_zero() {
            return 0.0;
        }
        let nb = self.num.bit_length() as i64;
        let db = self.den.bit_length() as i64;
        // Bring both magnitudes into ~60-bit range so the u64 -> f64
        // conversion is exact-ish, then reapply the scale.
        let shift_n = (nb - 60).max(0) as usize;
        let shift_d = (db - 60).max(0) as usize;
        let n = self.num.abs().shr_bits(shift_n).to_f64();
        let d = self.den.shr_bits(shift_d).to_f64();
        let mut v = (n / d) * 2f64.powi(shift_n as i32 - shift_d as i32);
        if self.num.is_negative() {
            v = -v;
        }
        v
    }

    /// Exact conversion from an `f64` that must be finite.
    ///
    /// Returns `None` for NaN or infinities. The result is the exact binary
    /// value of the float, e.g. `0.1` becomes the dyadic rational closest to
    /// one tenth.
    #[must_use]
    pub fn from_f64_exact(v: f64) -> Option<Rational> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rational::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let fraction = bits & ((1u64 << 52) - 1);
        let (mantissa, exp) = if exponent == 0 {
            (fraction, -1074i64)
        } else {
            (fraction | (1u64 << 52), exponent - 1075)
        };
        let mag = BigInt::from(mantissa) * BigInt::from(sign);
        let r = if exp >= 0 {
            Rational::new(mag.shl_bits(exp as usize), BigInt::one())
        } else {
            Rational::new(mag, BigInt::one().shl_bits((-exp) as usize))
        };
        Some(r)
    }

    /// Round to the nearest integer (ties round away from zero).
    #[must_use]
    pub fn round(&self) -> BigInt {
        let two = BigInt::from(2i64);
        let (q, r) = self.num.div_rem(&self.den);
        let twice_r = &r.abs() * &two;
        if twice_r >= self.den {
            if self.num.is_negative() {
                q - BigInt::one()
            } else {
                q + BigInt::one()
            }
        } else {
            q
        }
    }

    /// Integer floor.
    #[must_use]
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if self.num.is_negative() && !r.is_zero() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Integer ceiling.
    #[must_use]
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if self.num.is_positive() && !r.is_zero() {
            q + BigInt::one()
        } else {
            q
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<u64> for Rational {
    fn from(v: u64) -> Self {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl From<u32> for Rational {
    fn from(v: u32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl From<usize> for Rational {
    fn from(v: usize) -> Self {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Sign comparison settles most simplex ratio tests without any
        // multiplication at all.
        let sign_rank = |s: Sign| match s {
            Sign::Negative => 0u8,
            Sign::Zero => 1,
            Sign::Positive => 2,
        };
        match sign_rank(self.sign()).cmp(&sign_rank(other.sign())) {
            Ordering::Equal => {}
            order => return order,
        }
        if self.den == other.den {
            return self.num.cmp(&other.num);
        }
        // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

/// Magnitude bound under which the fused single-limb path is safe: with all
/// six components below `2³¹`, every cross product (`a·d·f`, `c·e·b`,
/// `b·d·f`) stays under `2⁹³` and their sum under `2⁹⁴`, comfortably inside
/// `i128`.
const FUSED_FAST_LIMIT: i64 = 1 << 31;

/// Binary gcd on `u128` magnitudes (both nonzero).
fn u128_gcd(mut a: u128, mut b: u128) -> u128 {
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// `BigInt` from a signed 128-bit value (two little-endian limbs).
fn bigint_from_i128(v: i128) -> BigInt {
    let sign = match v.cmp(&0) {
        Ordering::Less => Sign::Negative,
        Ordering::Equal => Sign::Zero,
        Ordering::Greater => Sign::Positive,
    };
    let mag = v.unsigned_abs();
    BigInt::from_sign_limbs(sign, vec![mag as u64, (mag >> 64) as u64])
}

/// The single-limb fast path behind [`Rational::sub_mul`] /
/// [`Rational::add_mul`]: `lhs ∓ factor·x` with one machine-integer gcd.
/// Returns `None` when any component exceeds the safe magnitude window.
fn fused_mul_add_fast(
    lhs: &Rational,
    factor: &Rational,
    x: &Rational,
    subtract: bool,
) -> Option<Rational> {
    let small = |b: &BigInt| -> Option<i128> {
        let v = b.to_i64()?;
        (-FUSED_FAST_LIMIT < v && v < FUSED_FAST_LIMIT).then_some(v as i128)
    };
    let (a, b) = (small(&lhs.num)?, small(&lhs.den)?);
    let (c, d) = (small(&factor.num)?, small(&factor.den)?);
    let (e, f) = (small(&x.num)?, small(&x.den)?);
    let prod = c * e; // < 2⁶²
    let num = if subtract {
        a * (d * f) - prod * b
    } else {
        a * (d * f) + prod * b
    };
    if num == 0 {
        return Some(Rational::zero());
    }
    let den = b * (d * f); // > 0: denominators are positive
    let g = u128_gcd(num.unsigned_abs(), den as u128) as i128;
    Some(Rational::from_reduced(
        bigint_from_i128(num / g),
        bigint_from_i128(den / g),
    ))
}

/// Shared implementation of `+` / `-` using Knuth's gcd-minimizing scheme
/// (TAOCP 4.5.1): instead of reducing `(ad ± cb) / bd` with one gcd of two
/// large products, compute `g0 = gcd(b, d)` first and reduce the much smaller
/// cofactors. When `g0 = 1` (the common case for random tableau entries) the
/// result is already in lowest terms and **no** further gcd is needed.
fn add_sub(lhs: &Rational, rhs: &Rational, subtract: bool) -> Rational {
    if rhs.is_zero() {
        return lhs.clone();
    }
    if lhs.is_zero() {
        let mut out = rhs.clone();
        if subtract {
            out.num = -out.num;
        }
        return out;
    }
    let combine = |a: BigInt, b: BigInt| if subtract { a - b } else { a + b };

    // Integer fast path: only one gcd-free reduction against a unit
    // denominator can arise, and both unit cases collapse to simple forms.
    if lhs.den.is_one() && rhs.den.is_one() {
        return Rational {
            num: combine(lhs.num.clone(), rhs.num.clone()),
            den: BigInt::one(),
        };
    }
    if lhs.den == rhs.den {
        let num = combine(lhs.num.clone(), rhs.num.clone());
        if num.is_zero() {
            return Rational::zero();
        }
        let g = num.gcd(&lhs.den);
        if g.is_one() {
            return Rational::from_reduced(num, lhs.den.clone());
        }
        return Rational::from_reduced(&num / &g, &lhs.den / &g);
    }

    let g0 = lhs.den.gcd(&rhs.den);
    if g0.is_one() {
        // gcd(ad ± cb, bd) = 1 when both inputs are reduced and b ⟂ d.
        let num = combine(&lhs.num * &rhs.den, &rhs.num * &lhs.den);
        if num.is_zero() {
            return Rational::zero();
        }
        return Rational::from_reduced(num, &lhs.den * &rhs.den);
    }
    let b_red = &lhs.den / &g0;
    let d_red = &rhs.den / &g0;
    let t = combine(&lhs.num * &d_red, &rhs.num * &b_red);
    if t.is_zero() {
        return Rational::zero();
    }
    let g1 = t.gcd(&g0);
    if g1.is_one() {
        Rational::from_reduced(t, &b_red * &rhs.den)
    } else {
        Rational::from_reduced(&t / &g1, &b_red * &(&rhs.den / &g1))
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        add_sub(self, rhs, false)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        add_sub(self, rhs, true)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        if self.is_zero() || rhs.is_zero() {
            return Rational::zero();
        }
        // Cross-cancel before multiplying: gcd(a, d) and gcd(c, b) are tiny
        // compared to gcd(ac, bd), and the products never grow past reduced
        // size. The result is in lowest terms by construction.
        let g1 = self.num.gcd(&rhs.den);
        let g2 = rhs.num.gcd(&self.den);
        let num = if g1.is_one() && g2.is_one() {
            &self.num * &rhs.num
        } else {
            &(&self.num / &g1) * &(&rhs.num / &g2)
        };
        let den = if g1.is_one() && g2.is_one() {
            &self.den * &rhs.den
        } else {
            &(&self.den / &g2) * &(&rhs.den / &g1)
        };
        Rational::from_reduced(num, den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "Rational division by zero");
        if self.is_zero() {
            return Rational::zero();
        }
        // a/b ÷ c/d = (a·d)/(b·c), cross-cancelled like multiplication; the
        // only extra work is moving `c`'s sign into the numerator.
        let g1 = self.num.gcd(&rhs.num);
        let g2 = rhs.den.gcd(&self.den);
        let mut num = if g1.is_one() && g2.is_one() {
            &self.num * &rhs.den
        } else {
            &(&self.num / &g1) * &(&rhs.den / &g2)
        };
        let mut den = if g1.is_one() && g2.is_one() {
            &self.den * &rhs.num
        } else {
            &(&self.den / &g2) * &(&rhs.num / &g1)
        };
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rational::from_reduced(num, den)
    }
}

macro_rules! forward_owned_binop_rat {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop_rat!(Add, add);
forward_owned_binop_rat!(Sub, sub);
forward_owned_binop_rat!(Mul, mul);
forward_owned_binop_rat!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = &*self + &rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = &*self - &rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = &*self * &rhs;
    }
}

impl DivAssign<&Rational> for Rational {
    fn div_assign(&mut self, rhs: &Rational) {
        *self = &*self / rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = &*self / &rhs;
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(mut self) -> Rational {
        self.num = -self.num;
        self
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -self.clone()
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl FromStr for Rational {
    type Err = ParseNumError;

    /// Parse `"a"`, `"a/b"`, or simple decimal literals like `"0.25"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den: BigInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(ParseNumError {
                    message: format!("zero denominator in {s:?}"),
                });
            }
            return Ok(Rational::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int: BigInt = if int_part.is_empty() || int_part == "-" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseNumError {
                    message: format!("invalid decimal literal: {s:?}"),
                });
            }
            let frac: BigInt = frac_part.parse()?;
            let scale = BigInt::from(10u64).pow(frac_part.len() as u32);
            let frac_rat = Rational::new(frac, scale);
            let int_rat = Rational::from(int);
            return Ok(if negative {
                int_rat - frac_rat
            } else {
                int_rat + frac_rat
            });
        }
        Ok(Rational::from(s.parse::<BigInt>()?))
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Rational {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Rational {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

/// Convenience constructor: `rat(1, 4)` is `1/4`.
#[must_use]
pub fn rat(num: i64, den: i64) -> Rational {
    Rational::from_ratio(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes_sign_and_gcd() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, 5), Rational::zero());
        assert_eq!(rat(6, 3), Rational::from_int(2));
        assert!(rat(6, 3).is_integer());
        assert!(!rat(1, 3).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn field_operations_small_cases() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(2, 3) / rat(4, 3), rat(1, 2));
        assert_eq!(-rat(2, 3), rat(-2, 3));
        assert_eq!(rat(2, 3).recip(), rat(3, 2));
    }

    #[test]
    fn ordering_cross_multiplies() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(7, 3) > rat(2, 1));
        assert_eq!(rat(2, 6).cmp(&rat(1, 3)), Ordering::Equal);
        assert_eq!(rat(1, 3).max(rat(1, 2)), rat(1, 2));
        assert_eq!(rat(1, 3).min(rat(1, 2)), rat(1, 3));
    }

    #[test]
    fn pow_positive_and_negative_exponents() {
        assert_eq!(rat(2, 3).pow(3), rat(8, 27));
        assert_eq!(rat(2, 3).pow(-2), rat(9, 4));
        assert_eq!(rat(5, 7).pow(0), Rational::one());
        // (1 - a^2)^(n-1) identity used by Lemma 1 for a = 1/4, n = 4.
        let a = rat(1, 4);
        let det = (Rational::one() - &a * &a).pow(3);
        assert_eq!(det, rat(3375, 4096));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "-3",
            "1/2",
            "-7/3",
            "22/7",
            "123456789012345678901/2",
        ] {
            let v: Rational = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("0.25".parse::<Rational>().unwrap(), rat(1, 4));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), rat(-1, 2));
        assert!("2.".parse::<Rational>().is_err());
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a/b".parse::<Rational>().is_err());
    }

    #[test]
    fn f64_conversions() {
        assert_eq!(rat(1, 4).to_f64(), 0.25);
        assert_eq!(rat(-3, 2).to_f64(), -1.5);
        assert!((rat(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(Rational::from_f64_exact(0.25), Some(rat(1, 4)));
        assert_eq!(Rational::from_f64_exact(-2.0), Some(rat(-2, 1)));
        assert_eq!(Rational::from_f64_exact(f64::NAN), None);
        assert_eq!(Rational::from_f64_exact(f64::INFINITY), None);
        // Round-trip through the exact binary value.
        let r = Rational::from_f64_exact(0.1).unwrap();
        assert_eq!(r.to_f64(), 0.1);
    }

    #[test]
    fn rounding_floor_ceil() {
        assert_eq!(rat(7, 2).round(), BigInt::from(4i64));
        assert_eq!(rat(-7, 2).round(), BigInt::from(-4i64));
        assert_eq!(rat(1, 3).round(), BigInt::from(0i64));
        assert_eq!(rat(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(rat(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(rat(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(rat(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(rat(4, 2).floor(), BigInt::from(2i64));
        assert_eq!(rat(4, 2).ceil(), BigInt::from(2i64));
    }

    #[test]
    fn geometric_mass_identities() {
        // The total mass of the two-sided geometric distribution is 1:
        // (1-a)/(1+a) * (1 + 2*sum_{z>=1} a^z) = 1, checked for truncation-free
        // small cases via the closed form of the partial sums.
        let a = rat(1, 5);
        let mut partial = Rational::zero();
        for z in 1..=60 {
            partial += a.pow(z);
        }
        let approx = (Rational::one() - &a) / (Rational::one() + &a)
            * (Rational::one() + rat(2, 1) * partial);
        // With 60 terms the defect is a^60, astronomically small but nonzero:
        assert!(approx < Rational::one());
        assert!(Rational::one() - approx < rat(1, 1_000_000_000));
    }
}
