//! # privmech-numerics
//!
//! Exact arithmetic substrate for the `privmech` workspace: arbitrary-precision
//! signed integers ([`BigInt`]) and exact rationals ([`Rational`]).
//!
//! The paper *Universally Optimal Privacy Mechanisms for Minimax Agents*
//! (Gupte & Sundararajan, PODS 2010) reasons about mechanism matrices whose
//! entries are exact fractions (e.g. the optimal mechanism of Table 1, or
//! `det G'_{n,α} = (1 − α²)^{n−1}` from Lemma 1). Verifying those claims with
//! floating-point arithmetic would replace equalities with tolerances, so the
//! whole workspace is generic over a scalar type and this crate provides the
//! exact instantiation.
//!
//! ```
//! use privmech_numerics::{Rational, rat};
//!
//! // Lemma 1: det G'_{n,α} = (1 - α²)^{n-1}, here for n = 3, α = 1/4.
//! let alpha = rat(1, 4);
//! let det = (Rational::one() - &alpha * &alpha).pow(2);
//! assert_eq!(det, rat(225, 256));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bigint;
pub mod rational;

pub use bigint::{BigInt, ParseNumError, Sign};
pub use rational::{rat, Rational};
