//! Property-based tests for the exact arithmetic substrate: ring/field axioms,
//! ordering consistency, parse/display round-trips, and division invariants.

use privmech_numerics::{BigInt, Rational};
use proptest::prelude::*;

fn arb_bigint() -> impl Strategy<Value = BigInt> {
    // Mix small values with products of large factors so multi-limb paths are hit.
    prop_oneof![
        any::<i64>().prop_map(BigInt::from),
        (any::<i128>(), any::<u64>()).prop_map(|(a, b)| BigInt::from(a) * BigInt::from(b)),
        (any::<i128>(), any::<i128>())
            .prop_map(|(a, b)| BigInt::from(a) * BigInt::from(b) + BigInt::from(1i64)),
    ]
}

fn arb_rational() -> impl Strategy<Value = Rational> {
    (any::<i64>(), 1i64..=1_000_000i64, any::<bool>()).prop_map(|(n, d, neg)| {
        let r = Rational::from_ratio(n, d);
        if neg {
            -r
        } else {
            r
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bigint_add_commutes(a in arb_bigint(), b in arb_bigint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn bigint_add_associates(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
    }

    #[test]
    fn bigint_mul_commutes_and_distributes(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn bigint_sub_is_add_neg(a in arb_bigint(), b in arb_bigint()) {
        prop_assert_eq!(&a - &b, &a + &(-b.clone()));
        prop_assert_eq!(&a - &a, BigInt::zero());
    }

    #[test]
    fn bigint_divrem_reconstructs(a in arb_bigint(), b in arb_bigint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&q * &b + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Truncated division: remainder has the sign of the dividend (or is zero).
        if !r.is_zero() {
            prop_assert_eq!(r.is_negative(), a.is_negative());
        }
    }

    #[test]
    fn bigint_display_parse_roundtrip(a in arb_bigint()) {
        let s = a.to_string();
        let back: BigInt = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn bigint_ordering_consistent_with_subtraction(a in arb_bigint(), b in arb_bigint()) {
        let diff = &a - &b;
        prop_assert_eq!(a > b, diff.is_positive());
        prop_assert_eq!(a == b, diff.is_zero());
    }

    #[test]
    fn bigint_gcd_divides_both_and_is_nonnegative(a in arb_bigint(), b in arb_bigint()) {
        let g = a.gcd(&b);
        prop_assert!(!g.is_negative());
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn bigint_shift_matches_pow2_mul(a in arb_bigint(), k in 0usize..130) {
        let shifted = a.shl_bits(k);
        let pow2 = BigInt::from(2i64).pow(k as u32);
        prop_assert_eq!(shifted.clone(), &a * &pow2);
        prop_assert_eq!(shifted.shr_bits(k), a);
    }

    #[test]
    fn rational_field_axioms(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!((&a * &b) * &c, &a * (&b * &c));
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
        prop_assert_eq!(&a + &Rational::zero(), a.clone());
        prop_assert_eq!(&a * &Rational::one(), a.clone());
        prop_assert_eq!(&a - &a, Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::one());
            prop_assert_eq!(&a / &a, Rational::one());
        }
    }

    #[test]
    fn rational_normalization_canonical(n in any::<i64>(), d in 1i64..=1_000_000i64, k in 1i64..=1000i64) {
        // Scaling numerator and denominator by the same factor yields the same value.
        let a = Rational::from_ratio(n, d);
        let b = Rational::new(
            BigInt::from(n) * BigInt::from(k),
            BigInt::from(d) * BigInt::from(k),
        );
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rational_ordering_translation_invariant(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!(a < b, &a + &c < &b + &c);
    }

    #[test]
    fn rational_display_parse_roundtrip(a in arb_rational()) {
        let s = a.to_string();
        let back: Rational = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn rational_to_f64_close(n in -1_000_000i64..1_000_000i64, d in 1i64..=1_000_000i64) {
        let r = Rational::from_ratio(n, d);
        let f = r.to_f64();
        let direct = n as f64 / d as f64;
        prop_assert!((f - direct).abs() <= 1e-9 * direct.abs().max(1.0));
    }

    #[test]
    fn rational_floor_ceil_round_bracket(a in arb_rational()) {
        let fl = Rational::from(a.floor());
        let ce = Rational::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rational::one());
        let rounded = Rational::from(a.round());
        prop_assert!((rounded - &a).abs() <= Rational::from_ratio(1, 2));
    }

    #[test]
    fn rational_from_f64_exact_roundtrip(x in -1e12f64..1e12f64) {
        let r = Rational::from_f64_exact(x).unwrap();
        prop_assert_eq!(r.to_f64(), x);
    }
}

// ---------------------------------------------------------------------------
// Small-value fast-path agreement (perf rework regression tests).
//
// BigInt add/sub/mul/cmp/gcd take an inline single-limb path when both
// operands fit in one 64-bit limb. These properties pin the fast path to two
// independent references on randomized u64-boundary inputs: (a) an `i128`
// model of the arithmetic, and (b) the multi-limb slow path itself, reached
// by shifting both operands 64 bits up (which forces two-limb
// representations while preserving the algebra).
// ---------------------------------------------------------------------------

/// Mix of boundary-heavy and uniform single-limb magnitudes.
fn arb_u64_boundary() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        Just(u64::MAX - 1),
        Just(1u64 << 63),
        Just((1u64 << 63) - 1),
        Just((1u64 << 32) - 1),
        Just(1u64 << 32),
        any::<u64>(),
    ]
}

fn arb_small_bigint() -> impl Strategy<Value = BigInt> {
    (arb_u64_boundary(), any::<bool>()).prop_map(|(mag, neg)| {
        let v = BigInt::from(mag);
        if neg {
            -v
        } else {
            v
        }
    })
}

/// Signed `i128` view of a single-limb BigInt (reference model).
fn as_i128(v: &BigInt) -> i128 {
    v.to_i128().expect("single-limb value fits i128")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn small_add_sub_match_i128_reference(a in arb_small_bigint(), b in arb_small_bigint()) {
        prop_assert_eq!(as_i128(&(&a + &b)), as_i128(&a) + as_i128(&b));
        prop_assert_eq!(as_i128(&(&a - &b)), as_i128(&a) - as_i128(&b));
    }

    #[test]
    fn small_mul_matches_u128_reference(a in arb_u64_boundary(), b in arb_u64_boundary()) {
        let prod = BigInt::from(a) * BigInt::from(b);
        prop_assert_eq!(prod.to_string(), (a as u128 * b as u128).to_string());
        let neg_prod = -BigInt::from(a) * BigInt::from(b);
        prop_assert_eq!((-neg_prod).to_string(), (a as u128 * b as u128).to_string());
    }

    #[test]
    fn small_cmp_matches_i128_reference(a in arb_small_bigint(), b in arb_small_bigint()) {
        prop_assert_eq!(a.cmp(&b), as_i128(&a).cmp(&as_i128(&b)));
    }

    #[test]
    fn fast_path_agrees_with_multi_limb_slow_path(a in arb_small_bigint(), b in arb_small_bigint()) {
        // x -> x << 64 is an injective ring homomorphism onto two-limb values
        // for + and -, and scales products by 2^128: every identity below
        // forces the slow path on the left and the fast path on the right.
        let (wa, wb) = (a.shl_bits(64), b.shl_bits(64));
        prop_assert_eq!(&wa + &wb, (&a + &b).shl_bits(64));
        prop_assert_eq!(&wa - &wb, (&a - &b).shl_bits(64));
        prop_assert_eq!(&wa * &wb, (&a * &b).shl_bits(128));
    }

    #[test]
    fn small_gcd_matches_euclid_reference(a in arb_u64_boundary(), b in arb_u64_boundary()) {
        // Reference: schoolbook Euclid on u64.
        let (mut x, mut y) = (a, b);
        while y != 0 {
            let t = x % y;
            x = y;
            y = t;
        }
        prop_assert_eq!(BigInt::from(a).gcd(&BigInt::from(b)), BigInt::from(x));
    }

    #[test]
    fn gcd_fast_and_slow_paths_agree(a in arb_u64_boundary(), b in arb_u64_boundary(), k in 1usize..=70) {
        // gcd(a·2^k, b·2^k) = gcd(a, b)·2^k: with k >= 1 the left side runs
        // the multi-limb in-place binary loop whenever a or b is large, while
        // the right side runs the u64 fast path.
        let g_shifted = BigInt::from(a).shl_bits(k).gcd(&BigInt::from(b).shl_bits(k));
        let g_small = BigInt::from(a).gcd(&BigInt::from(b)).shl_bits(k);
        prop_assert_eq!(g_shifted, g_small);
    }

    #[test]
    fn small_divrem_matches_i128_reference(a in arb_small_bigint(), b in arb_small_bigint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(as_i128(&q), as_i128(&a) / as_i128(&b));
        prop_assert_eq!(as_i128(&r), as_i128(&a) % as_i128(&b));
    }

    #[test]
    fn knuth_division_reconstructs_on_wide_inputs(
        a in arb_u64_boundary(), b in arb_u64_boundary(),
        c in arb_u64_boundary(), d in arb_u64_boundary(),
        shift in 0usize..=130,
    ) {
        // Multi-limb dividend (up to ~4 limbs) over multi-limb divisor
        // exercises Algorithm D including its rare correction branch.
        let dividend = (BigInt::from(a) * BigInt::from(b)).shl_bits(shift) + BigInt::from(c);
        let divisor = BigInt::from(d).shl_bits(shift / 2) + BigInt::one();
        let (q, r) = dividend.div_rem(&divisor);
        prop_assert_eq!(&q * &divisor + &r, dividend);
        prop_assert!(r.abs() < divisor.abs());
    }
}

// ---------------------------------------------------------------------------
// Fused eta-vector operations (PR 4): `sub_mul` / `add_mul` power the revised
// simplex's FTRAN/BTRAN kernels. Their single-limb fast path (one u128 gcd on
// machine integers) must agree with the generic mul-then-add/sub path on both
// sides of the 2³¹ magnitude window, including the boundary itself.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fused_sub_mul_matches_unfused_small(
        a in -40i64..=40, b in 1i64..=40,
        c in -40i64..=40, d in 1i64..=40,
        e in -40i64..=40, f in 1i64..=40,
    ) {
        let (x, y, z) = (Rational::from_ratio(a, b), Rational::from_ratio(c, d), Rational::from_ratio(e, f));
        prop_assert_eq!(x.sub_mul(&y, &z), &x - &(&y * &z));
        prop_assert_eq!(x.add_mul(&y, &z), &x + &(&y * &z));
    }

    #[test]
    fn fused_ops_agree_across_the_fast_path_boundary(
        base in prop::collection::vec((1i64..=3, 0i64..=2), 6),
        offset in -2i64..=2,
    ) {
        // Components straddling 2³¹: (2³¹ + offset) · scale, with some
        // components small — mixes fast-path hits, misses, and the exact
        // window edges.
        let limit = 1i64 << 31;
        let comp = |i: usize| -> i64 {
            let (scale, sel) = base[i];
            match sel {
                0 => scale,                 // tiny: inside the window
                1 => limit - scale,         // just inside
                _ => limit + scale + offset.abs(), // outside: generic path
            }
        };
        let x = Rational::from_ratio(comp(0) * offset.signum().max(-1), comp(1));
        let y = Rational::from_ratio(comp(2), comp(3));
        let z = Rational::from_ratio(-comp(4), comp(5));
        prop_assert_eq!(x.sub_mul(&y, &z), &x - &(&y * &z));
        prop_assert_eq!(x.add_mul(&y, &z), &x + &(&y * &z));
    }

    #[test]
    fn fused_ops_handle_zero_operands(
        a in -9i64..=9, b in 1i64..=9,
    ) {
        let x = Rational::from_ratio(a, b);
        let zero = Rational::zero();
        prop_assert_eq!(x.sub_mul(&zero, &x), x.clone());
        prop_assert_eq!(x.sub_mul(&x, &zero), x.clone());
        prop_assert_eq!(zero.sub_mul(&x, &x), -(&x * &x));
        prop_assert_eq!(x.add_mul(&zero, &zero), x.clone());
    }
}
