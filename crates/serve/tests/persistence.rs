//! Server-level contracts of the PR 5 satellites, over real TCP:
//!
//! * **cross-process cache persistence** — a server started with
//!   `cache_file` dumps its sharded LRU on shutdown; a restarted server hits
//!   on a pre-restart key with byte-identical bytes (entries are portable by
//!   the bit-identity contract), including under `verify_hits`;
//! * **negative caching** — deterministic validation errors replay from
//!   their own cache with their own counters, leaving the solve hit rate
//!   untouched;
//! * **`metrics` op** — per-op latency histograms count every handled
//!   request.

use privmech_numerics::{rat, Rational};
use privmech_serve::client::{Client, ClientError};
use privmech_serve::json::Json;
use privmech_serve::proto::{CacheDisposition, CacheMode, ConsumerSpec, LossSpec};
use privmech_serve::server::{self, ServerConfig};

fn tmp_cache_file(name: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "privmech-serve-{name}-{}.jsonl",
        std::process::id()
    ));
    path
}

#[test]
fn restarted_server_hits_on_a_pre_restart_key() {
    let path = tmp_cache_file("restart");
    let _ = std::fs::remove_file(&path);
    let config = ServerConfig {
        cache_file: Some(path.clone()),
        ..ServerConfig::default()
    };

    let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
    let alpha = rat(1, 4);
    let bad = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute).with_support(vec![9]);

    // First server lifetime: populate both caches, then shut down (dump).
    let first_raw = {
        let handle = server::spawn(config.clone()).expect("bind loopback");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let reply = client.solve(&spec, &alpha, CacheMode::Use).expect("solve");
        assert_eq!(reply.cache, CacheDisposition::Miss);
        let err = client.solve(&bad, &alpha, CacheMode::Use).unwrap_err();
        let ClientError::Server(e) = err else {
            panic!("expected a server error")
        };
        assert_eq!(e.code, "invalid_side_information");
        handle.shutdown();
        reply.raw
    };
    assert!(path.exists(), "shutdown must write the cache file");

    // Second lifetime: the very first identical request must be a hit, with
    // byte-identical bytes — asserted server-side too via verify_hits.
    {
        let handle = server::spawn(ServerConfig {
            verify_hits: true,
            ..config
        })
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let reply = client.solve(&spec, &alpha, CacheMode::Use).expect("solve");
        assert_eq!(
            reply.cache,
            CacheDisposition::Hit,
            "a restarted server must hit on a pre-restart key"
        );
        assert_eq!(reply.raw, first_raw, "persisted entry is byte-identical");
        // The negative entry survived too.
        let err = client.solve(&bad, &alpha, CacheMode::Use).unwrap_err();
        let ClientError::Server(e) = err else {
            panic!("expected a server error")
        };
        assert_eq!(e.code, "invalid_side_information");
        let stats = client.cache_stats().expect("stats");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.neg_hits, 1, "negative entry replayed from the dump");
        handle.shutdown();
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn negative_cache_replays_validation_errors_with_its_own_counters() {
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);

    let code_of = |err: ClientError| match err {
        ClientError::Server(e) => (e.code, e.message),
        other => panic!("expected a server error, got {other:?}"),
    };

    // α = 3/2 is a deterministic validation failure: first a neg miss, then
    // neg hits with the identical code and message.
    let first = code_of(client.solve(&spec, &rat(3, 2), CacheMode::Use).unwrap_err());
    assert_eq!(first.0, "invalid_alpha");
    for _ in 0..3 {
        let repeat = code_of(client.solve(&spec, &rat(3, 2), CacheMode::Use).unwrap_err());
        assert_eq!(repeat, first, "replayed error must be identical");
    }
    // A sweep with the same bad α in the batch is its own negative entry.
    let sweep_err = code_of(
        client
            .sweep(&spec, &[rat(1, 4), rat(3, 2)], CacheMode::Use)
            .unwrap_err(),
    );
    assert_eq!(sweep_err.0, "invalid_alpha");

    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.neg_hits, 3, "three replayed solve errors");
    assert_eq!(stats.neg_entries, 2, "one solve entry, one sweep entry");
    // The solve hit rate is untouched: no positive lookups ever hit.
    assert_eq!(stats.hits, 0);
    // Field-order noise does not split negative entries: the same bad
    // request with reordered JSON fields replays the same cached error.
    let reordered = Json::obj()
        .with("op", Json::str("solve"))
        .with("alpha", Json::str("3/2"))
        .with("loss", Json::str("absolute"))
        .with("n", Json::num_u64(3))
        .with("kind", Json::str("minimax"))
        .with("strategy", Json::str("factorization"))
        .with("scalar", Json::str("rational"));
    let err = client.call(reordered).unwrap_err();
    let ClientError::Server(e) = err else {
        panic!("expected a server error")
    };
    assert_eq!(e.code, "invalid_alpha");
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.neg_hits, 4, "canonicalized key absorbed the reorder");

    // Bypass skips the negative cache exactly like the positive one.
    let _ = client
        .solve(&spec, &rat(3, 2), CacheMode::Bypass)
        .unwrap_err();
    assert_eq!(client.cache_stats().expect("stats").neg_hits, 4);
    handle.shutdown();
}

#[test]
fn compute_stage_errors_are_not_negatively_cached() {
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    // A schema-level failure (missing loss) is bad_request — not a
    // CoreError-mapped validation code, so it never enters the cache.
    for _ in 0..2 {
        let err = client
            .call(
                Json::obj()
                    .with("op", Json::str("solve"))
                    .with("n", Json::num_u64(3))
                    .with("alpha", Json::str("1/4")),
            )
            .unwrap_err();
        let ClientError::Server(e) = err else {
            panic!("expected a server error")
        };
        assert_eq!(e.code, "bad_request");
    }
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.neg_entries, 0);
    assert_eq!(stats.neg_hits, 0);
    handle.shutdown();
}

#[test]
fn metrics_op_reports_per_op_latency_histograms() {
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let spec = ConsumerSpec::<Rational>::minimax(2, LossSpec::Absolute);
    client.ping().expect("ping");
    client.ping().expect("ping");
    let _ = client
        .solve(&spec, &rat(1, 3), CacheMode::Use)
        .expect("solve");
    let _ = client
        .solve(&spec, &rat(1, 3), CacheMode::Use)
        .expect("solve");
    let _ = client
        .sweep(&spec, &[rat(1, 4), rat(1, 2)], CacheMode::Use)
        .expect("sweep");

    let metrics = client.metrics().expect("metrics");
    let ops = metrics.get("ops").expect("ops object");
    let count_of = |op: &str| {
        ops.get(op)
            .and_then(|o| o.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    assert_eq!(count_of("ping"), 2);
    assert_eq!(count_of("solve"), 2);
    assert_eq!(count_of("sweep"), 1);
    assert!(count_of("hello") >= 1, "negotiation recorded");
    // Histograms carry bucketed latencies summing to the count.
    let solve = ops.get("solve").expect("solve histogram");
    let bucket_sum: u64 = solve
        .get("buckets")
        .and_then(Json::as_arr)
        .expect("buckets")
        .iter()
        .filter_map(|b| b.get("count").and_then(Json::as_u64))
        .sum();
    assert_eq!(bucket_sum, 2);
    assert!(
        solve.get("total_ns").and_then(Json::as_u64).unwrap_or(0) > 0,
        "solves take measurable time"
    );
    handle.shutdown();
}
