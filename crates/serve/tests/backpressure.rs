//! The per-connection in-flight bound (`ServerConfig::max_inflight_per_conn`).
//!
//! Before the bound existed, a client pipelining thousands of requests made
//! the server queue every decoded frame as a `Job` — memory grew linearly
//! with however far the client raced ahead of the worker pool. With the
//! bound, the connection's reader thread stops reading frames at the cap, so
//! at most `cap` requests of a connection occupy server memory at once and
//! the excess stays in TCP flow control on the client side. The `stats` op's
//! `inflight_peak` counter is the observable: it is the high-water mark of
//! any connection's in-flight depth, measured at the exact place jobs are
//! admitted.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;

use privmech_numerics::{rat, Rational};
use privmech_serve::client::Client;
use privmech_serve::frame::{read_frame, write_frame};
use privmech_serve::json::{self, Json};
use privmech_serve::proto::{ConsumerSpec, LossSpec, WireScalar};
use privmech_serve::server::{self, ServerConfig};

/// A tiny v2 sweep request (two α points at n = 2) with the given id.
fn sweep_frame(id: u64) -> String {
    let spec = ConsumerSpec::<Rational>::minimax(2, LossSpec::Absolute);
    let body = spec
        .encode_onto(
            Json::obj()
                .with("v", Json::num_u64(2))
                .with("id", Json::num_u64(id))
                .with("op", Json::str("sweep"))
                .with("scalar", Json::str("rational")),
        )
        .with(
            "alphas",
            Json::Arr(vec![rat(1, 4).to_wire(), rat(1, 2).to_wire()]),
        );
    json::to_string(&body)
}

#[test]
fn slow_consumer_pipelining_thousands_of_sweeps_is_bounded() {
    const CAP: usize = 8;
    const REQUESTS: usize = 2000;

    let handle = server::spawn(ServerConfig {
        max_inflight_per_conn: CAP,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let write_half = stream.try_clone().expect("clone");

    // The flooding half of a slow consumer: write every request up front,
    // reading nothing until the writes are done. Without the bound the
    // server would queue (almost) all of them; with it, the reader thread
    // stops draining the socket at CAP and the writes back up into TCP
    // flow control — which is why this must run on its own thread.
    let writer = std::thread::spawn(move || {
        let mut writer = BufWriter::new(write_half);
        for id in 1..=REQUESTS as u64 {
            write_frame(&mut writer, sweep_frame(id).as_bytes()).expect("write");
        }
        std::io::Write::flush(&mut writer).expect("flush");
    });

    // ...and the slow reading half: drain terminals until every sweep is
    // answered. Each sweep streams two `sweep_item` frames plus a terminal
    // `sweep_done`.
    let mut reader = BufReader::new(stream);
    let mut terminals = 0usize;
    let mut items = 0usize;
    while terminals < REQUESTS {
        let payload = read_frame(&mut reader)
            .expect("read")
            .expect("server closed early");
        let text = std::str::from_utf8(&payload).expect("utf8");
        assert!(
            !text.contains("\"ok\":false"),
            "unexpected error frame: {text}"
        );
        if text.contains("\"stream\":\"sweep_item\"") {
            items += 1;
        } else {
            assert!(text.contains("\"stream\":\"sweep_done\""), "frame: {text}");
            terminals += 1;
        }
    }
    writer.join().expect("writer thread");
    assert_eq!(terminals, REQUESTS);
    assert_eq!(items, REQUESTS * 2, "two streamed items per sweep");

    // The server-side evidence: the connection pipelined (depth beyond 1)
    // but never held more than CAP of its requests in memory at once.
    let mut probe = Client::connect(addr).expect("stats connection");
    let stats = probe.cache_stats().expect("stats");
    assert_eq!(stats.max_inflight, CAP as u64);
    assert!(
        stats.inflight_peak <= CAP as u64,
        "in-flight peak {} exceeded the cap {CAP}",
        stats.inflight_peak
    );
    assert!(
        stats.inflight_peak >= 2,
        "flooding {REQUESTS} requests never overlapped two in flight — \
         the gate is throttling far below its cap"
    );
    handle.shutdown();
}

#[test]
fn zero_cap_means_unbounded_and_stats_say_so() {
    let handle = server::spawn(ServerConfig {
        max_inflight_per_conn: 0,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.ping().expect("ping");
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.max_inflight, 0, "0 encodes 'unbounded' on the wire");
    assert!(stats.inflight_peak >= 1, "the pings were admitted");
    handle.shutdown();
}
