//! Torture tests for the epoll readiness loop: adversarial socket behavior
//! that the old thread-per-connection reader never had to survive in one
//! thread.
//!
//! The readiness loop owns every connection's partial-frame state machine,
//! so the properties under test are about *interleaving*: a frame arriving
//! one byte per TCP segment must decode exactly like a clean write; a
//! connection stalled mid-frame must cost nothing but its buffer while other
//! connections make full-speed progress; hundreds of idle registrations must
//! not starve a hot pipelined one; and teardown must still flush every
//! in-flight completion through the per-connection outbox before the socket
//! closes. Every reply is checked byte-for-byte against a clean-connection
//! oracle — the loop rewrite is only correct if it is invisible on the wire.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use privmech_numerics::{rat, Rational};
use privmech_serve::frame::{read_frame, write_frame};
use privmech_serve::json::{self, Json};
use privmech_serve::proto::{ConsumerSpec, LossSpec, WireScalar};
use privmech_serve::server::{self, ServerConfig};

/// A v2 solve request (n = 3, absolute loss) at `alpha = num/den`.
///
/// Cache mode is `bypass` so the reply's `"cache"` disposition is the same
/// whether the oracle or the torture connection asks first — full replies
/// then compare byte-for-byte (the result bytes are cache-invariant anyway;
/// the *disposition* echo is what bypass pins down).
fn solve_payload(id: u64, num: i64, den: i64) -> Vec<u8> {
    let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
    let body = spec
        .encode_onto(
            Json::obj()
                .with("v", Json::num_u64(2))
                .with("id", Json::num_u64(id))
                .with("op", Json::str("solve"))
                .with("cache", Json::str("bypass")),
        )
        .with("alpha", rat(num, den).to_wire());
    json::to_string(&body).into_bytes()
}

/// The payload wrapped in its length prefix — the exact bytes a client puts
/// on the wire, for tests that need to split the write at arbitrary points.
fn framed(payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::with_capacity(4 + payload.len());
    write_frame(&mut wire, payload).expect("framing into a Vec cannot fail");
    wire
}

/// The reply's echoed request id (every reply in these tests carries one).
fn reply_id(reply: &[u8]) -> u64 {
    json::parse(std::str::from_utf8(reply).expect("replies are UTF-8"))
        .expect("replies are JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("v2 replies echo the request id")
}

/// Clean-connection oracle: send each payload with a single buffered write
/// and collect the reply bytes, keyed by echoed id. Cached and uncached
/// responses are byte-identical by the cache contract, so oracle replies
/// compare exactly against replies produced later (or earlier) for the same
/// request content and id.
fn oracle_replies(addr: std::net::SocketAddr, payloads: &[Vec<u8>]) -> Vec<(u64, Vec<u8>)> {
    let stream = TcpStream::connect(addr).expect("connect oracle");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    payloads
        .iter()
        .map(|payload| {
            write_frame(&mut writer, payload).expect("oracle write");
            writer.flush().expect("oracle flush");
            let reply = read_frame(&mut reader)
                .expect("oracle read")
                .expect("oracle reply before EOF");
            (reply_id(&reply), reply)
        })
        .collect()
}

fn lookup(replies: &[(u64, Vec<u8>)], id: u64) -> &[u8] {
    &replies
        .iter()
        .find(|(got, _)| *got == id)
        .unwrap_or_else(|| panic!("no reply for id {id}"))
        .1
}

#[test]
fn single_byte_trickle_decodes_byte_identically() {
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let addr = handle.addr();

    let payloads: Vec<Vec<u8>> = (0..3)
        .map(|i| solve_payload(40 + i, 1 + i as i64, 7))
        .collect();
    let oracle = oracle_replies(addr, &payloads);

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Drip all three frames — length prefixes included — one byte per
    // segment. Nagle is off and the pauses keep the kernel from coalescing,
    // so the readiness loop sees a `readable` wake-up per byte and must
    // reassemble the frames across hundreds of partial reads.
    for (i, payload) in payloads.iter().enumerate() {
        for &byte in &framed(payload) {
            stream.write_all(&[byte]).expect("trickle write");
            if i == 0 {
                std::thread::sleep(Duration::from_micros(300));
            }
        }
    }

    for _ in 0..payloads.len() {
        let reply = read_frame(&mut reader)
            .expect("read reply")
            .expect("reply before EOF");
        assert_eq!(
            reply,
            lookup(&oracle, reply_id(&reply)),
            "trickled frame produced different bytes than a clean write"
        );
    }
    handle.shutdown();
}

#[test]
fn slow_loris_stall_does_not_block_other_connections() {
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let addr = handle.addr();

    let loris_payload = solve_payload(7, 2, 9);
    let oracle = oracle_replies(addr, std::slice::from_ref(&loris_payload));

    // Loris 1 stalls inside the length prefix; loris 2 stalls halfway into
    // the payload. Both hold their sockets open, sending nothing.
    let wire = framed(&loris_payload);
    let mut loris_prefix = TcpStream::connect(addr).expect("connect");
    loris_prefix.set_nodelay(true).expect("nodelay");
    loris_prefix.write_all(&wire[..2]).expect("partial prefix");

    let mut loris_body = TcpStream::connect(addr).expect("connect");
    loris_body.set_nodelay(true).expect("nodelay");
    let half = 4 + loris_payload.len() / 2;
    loris_body.write_all(&wire[..half]).expect("partial body");

    // While both stall, a well-behaved connection gets full service. A
    // blocking read anywhere in the loop would hang this whole section (and
    // the test harness would time it out).
    let busy: Vec<Vec<u8>> = (0..20)
        .map(|i| solve_payload(100 + i, 1, 5 + i as i64))
        .collect();
    let busy_replies = oracle_replies(addr, &busy);
    assert_eq!(busy_replies.len(), 20);

    // The stalled connections are not dead, just slow: each completes its
    // frame after the stall and still gets the exact oracle bytes.
    for (mut loris, sent) in [(loris_prefix, 2), (loris_body, half)] {
        let mut reader = BufReader::new(loris.try_clone().expect("clone"));
        loris.write_all(&wire[sent..]).expect("finish frame");
        let reply = read_frame(&mut reader)
            .expect("read loris reply")
            .expect("reply before EOF");
        assert_eq!(reply, lookup(&oracle, 7));
    }
    handle.shutdown();
}

#[test]
fn slow_loris_frames_complete_after_the_stall() {
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let addr = handle.addr();

    let payload = solve_payload(7, 2, 9);
    let oracle = oracle_replies(addr, std::slice::from_ref(&payload));
    let wire = framed(&payload);

    for split in [2usize, 4 + payload.len() / 2] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        stream.write_all(&wire[..split]).expect("head");
        // Let the readiness loop observe (and buffer) the partial frame
        // before the tail arrives.
        std::thread::sleep(Duration::from_millis(30));
        stream.write_all(&wire[split..]).expect("tail");
        let reply = read_frame(&mut reader)
            .expect("read reply")
            .expect("reply before EOF");
        assert_eq!(
            reply,
            lookup(&oracle, 7),
            "frame split at byte {split} produced different bytes"
        );
    }
    handle.shutdown();
}

#[test]
fn hundreds_of_idle_connections_do_not_starve_a_hot_one() {
    const IDLE: usize = 512;
    const REQUESTS: u64 = 100;

    let handle = server::spawn(ServerConfig {
        max_inflight_per_conn: 16,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.addr();

    // Cycle a handful of α values; ids are distinct so every reply is
    // attributable.
    let payloads: Vec<Vec<u8>> = (0..REQUESTS)
        .map(|i| solve_payload(i, 1 + (i % 6) as i64, 11))
        .collect();
    let oracle = oracle_replies(addr, &payloads);

    let idle: Vec<TcpStream> = (0..IDLE)
        .map(|_| TcpStream::connect(addr).expect("connect idle"))
        .collect();

    // One hot connection pipelines everything in a burst, then drains.
    let stream = TcpStream::connect(addr).expect("connect hot");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    for payload in &payloads {
        write_frame(&mut writer, payload).expect("pipeline write");
    }
    writer.flush().expect("pipeline flush");

    let mut seen = vec![false; REQUESTS as usize];
    for _ in 0..REQUESTS {
        let reply = read_frame(&mut reader)
            .expect("read reply")
            .expect("reply before EOF");
        let id = reply_id(&reply);
        assert_eq!(reply, lookup(&oracle, id));
        assert!(!seen[id as usize], "duplicate reply for id {id}");
        seen[id as usize] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "a pipelined request went unanswered"
    );

    // The idle connections were registered the whole time; prove a few are
    // still serviceable rather than silently torn down.
    for stream in idle.iter().take(3) {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let ping = br#"{"v":2,"id":1,"op":"ping"}"#;
        write_frame(&mut writer, ping).expect("ping write");
        writer.flush().expect("ping flush");
        let reply = read_frame(&mut reader)
            .expect("ping read")
            .expect("ping reply before EOF");
        assert_eq!(reply_id(&reply), 1);
    }
    drop(idle);
    handle.shutdown();
}

#[test]
fn teardown_flushes_replies_for_frames_in_flight() {
    const SOLVES: u64 = 6;

    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let addr = handle.addr();

    let payloads: Vec<Vec<u8>> = (0..SOLVES)
        .map(|i| solve_payload(i, 1 + i as i64, 13))
        .collect();
    let oracle = oracle_replies(addr, &payloads);

    // Burst every solve plus a shutdown on one connection, so the stop flag
    // trips while solves are still queued or running. The drain phase must
    // deliver every terminal reply before the socket closes.
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    for payload in &payloads {
        write_frame(&mut writer, payload).expect("burst write");
    }
    write_frame(&mut writer, br#"{"v":2,"id":999,"op":"shutdown"}"#).expect("shutdown write");
    writer.flush().expect("burst flush");

    let mut solve_replies = 0u64;
    let mut stopping_seen = false;
    while let Some(reply) = read_frame(&mut reader).expect("read during teardown") {
        let id = reply_id(&reply);
        if id == 999 {
            let parsed = json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
            assert_eq!(
                parsed
                    .get("result")
                    .and_then(|r| r.get("stopping"))
                    .and_then(Json::as_bool),
                Some(true)
            );
            stopping_seen = true;
        } else {
            assert_eq!(reply, lookup(&oracle, id));
            solve_replies += 1;
        }
    }
    assert!(stopping_seen, "shutdown acknowledgement was dropped");
    assert_eq!(
        solve_replies, SOLVES,
        "teardown dropped in-flight replies instead of flushing them"
    );
    handle.join();
}
