//! Fault injection for the fleet tier: shard processes die (and come back)
//! under a live router, and the blast radius must be exactly the dead
//! shard's keyspace.
//!
//! Topology per test: real `privmech-serve` child processes as shards, an
//! in-process [`router`] in front. The ring ownership oracle is public —
//! [`ShardRing`] + [`routing_key`] — so tests *derive* which shard owns a
//! request and then aim traffic at (or away from) the victim:
//!
//! * routed replies are byte-identical to asking the owning shard directly,
//! * killing a shard mid-pipeline — including mid-`sweep_item`-stream —
//!   terminates only that shard's requests with `shard_unavailable`, while
//!   the surviving shard's replies stay byte-identical,
//! * a restarted shard (fresh ephemeral port, same `--cache-file`) is
//!   re-admitted via [`RouterHandle::update_shard`] and serves cache *hits*
//!   for keys it solved before dying.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use privmech_numerics::{rat, Rational};
use privmech_serve::frame::{read_frame, write_frame};
use privmech_serve::json::{self, Json};
use privmech_serve::proto::{routing_key, ConsumerSpec, LossSpec, WireScalar};
use privmech_serve::ring::ShardRing;
use privmech_serve::router::{self, RouterConfig};

/// A `privmech-serve` child process and the address it bound.
struct Shard {
    child: Child,
    addr: String,
}

impl Shard {
    /// Spawn a shard with extra CLI flags, parsing the banner for the port.
    fn spawn(extra: &[&str]) -> Shard {
        let mut child = Command::new(env!("CARGO_BIN_EXE_privmech-serve"))
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn privmech-serve");
        let stdout = child.stdout.take().expect("child stdout is piped");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines.next().expect("shard banner").expect("read banner");
        let addr = banner
            .strip_prefix("privmech-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected shard banner: {banner}"))
            .to_string();
        // Keep draining stdout so the child can never block on a full pipe.
        std::thread::spawn(move || lines.for_each(drop));
        Shard { child, addr }
    }

    /// SIGKILL — the crash case. No shutdown handshake, no cache dump.
    fn kill(&mut self) {
        self.child.kill().expect("kill shard");
        self.child.wait().expect("reap shard");
    }
}

/// One length-prefixed request/response exchange on `stream`.
fn rpc(stream: &TcpStream, body: &Json) -> Vec<u8> {
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    write_frame(&mut writer, json::to_string(body).as_bytes()).expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    read_frame(&mut reader)
        .expect("read")
        .expect("reply before EOF")
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// Graceful shard shutdown: the path that dumps `--cache-file`.
fn stop_gracefully(shard: &mut Shard) {
    let stream = connect(&shard.addr);
    let reply = rpc(
        &stream,
        &Json::obj()
            .with("v", Json::num_u64(2))
            .with("id", Json::num_u64(0))
            .with("op", Json::str("shutdown")),
    );
    assert!(
        parse(&reply).get("result").is_some(),
        "shutdown not acknowledged"
    );
    shard.child.wait().expect("reap shard");
}

fn parse(reply: &[u8]) -> Json {
    json::parse(std::str::from_utf8(reply).expect("UTF-8 reply")).expect("JSON reply")
}

fn error_code(reply: &[u8]) -> Option<String> {
    let parsed = parse(reply);
    Some(parsed.get("error")?.get("code")?.as_str()?.to_string())
}

fn cache_disposition(reply: &[u8]) -> Option<String> {
    Some(parse(reply).get("cache")?.as_str()?.to_string())
}

/// A v2 solve body (n = 3, absolute loss); `cache` chooses use vs bypass.
fn solve_body(id: u64, alpha: &Rational, cache: &str) -> Json {
    ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute)
        .encode_onto(
            Json::obj()
                .with("v", Json::num_u64(2))
                .with("id", Json::num_u64(id))
                .with("op", Json::str("solve"))
                .with("cache", Json::str(cache)),
        )
        .with("alpha", alpha.to_wire())
}

/// A slow v2 bypass sweep: 12 α points at n = 8 stream for a long time
/// relative to a `kill()`, so a mid-stream crash lands deterministically.
fn slow_sweep_body(id: u64) -> Json {
    let alphas: Vec<Json> = (2..14).map(|d| rat(1, d).to_wire()).collect();
    ConsumerSpec::<Rational>::minimax(8, LossSpec::Absolute)
        .encode_onto(
            Json::obj()
                .with("v", Json::num_u64(2))
                .with("id", Json::num_u64(id))
                .with("op", Json::str("sweep"))
                .with("cache", Json::str("bypass")),
        )
        .with("alphas", Json::Arr(alphas))
}

/// The shard index owning `body` under the router's default ring.
fn owner(ring: &ShardRing, body: &Json) -> usize {
    ring.shard_for(&routing_key(body).expect("compute requests have routing keys"))
}

/// An α whose solve (at n = 3) the given shard owns.
fn alpha_owned_by(ring: &ShardRing, shard: usize) -> Rational {
    (2..1000)
        .map(|d| rat(1, d))
        .find(|alpha| owner(ring, &solve_body(0, alpha, "use")) == shard)
        .expect("some alpha in 1/2..1/999 hashes to every shard")
}

#[test]
fn routed_replies_are_byte_identical_to_the_owning_shard() {
    let shards = [Shard::spawn(&[]), Shard::spawn(&[])];
    let handle = router::spawn(RouterConfig::new(
        shards.iter().map(|s| s.addr.clone()).collect(),
    ))
    .expect("spawn router");
    let ring = ShardRing::with_default_vnodes(2);

    let routed = connect(&handle.addr().to_string());
    for (id, d) in (2..10).enumerate() {
        // Bypass pins the disposition, so the full envelope must match.
        let body = solve_body(id as u64, &rat(1, d), "bypass");
        let via_router = rpc(&routed, &body);
        let direct = rpc(&connect(&shards[owner(&ring, &body)].addr), &body);
        assert_eq!(
            via_router, direct,
            "routed reply for alpha 1/{d} diverged from the owning shard"
        );
    }

    // Validation errors route and relay the same way: α ≥ 1 is rejected by
    // the shard, and the router must pass the rejection through untouched.
    let bad = solve_body(99, &rat(3, 2), "bypass");
    let via_router = rpc(&routed, &bad);
    let direct = rpc(&connect(&shards[owner(&ring, &bad)].addr), &bad);
    assert_eq!(via_router, direct);
    assert_eq!(
        parse(&via_router).get("ok").and_then(Json::as_bool),
        Some(false)
    );

    // Routing is consistent: the same key goes to the same shard, so a
    // cached re-ask through the router hits that shard's warm cache.
    let alpha = alpha_owned_by(&ring, 0);
    let first = rpc(&routed, &solve_body(200, &alpha, "use"));
    let second = rpc(&routed, &solve_body(201, &alpha, "use"));
    assert_eq!(cache_disposition(&first).as_deref(), Some("miss"));
    assert_eq!(cache_disposition(&second).as_deref(), Some("hit"));

    handle.shutdown();
    for mut shard in shards {
        shard.kill();
    }
}

#[test]
fn killing_a_shard_mid_stream_fails_only_its_keys() {
    let mut shards = [Shard::spawn(&[]), Shard::spawn(&[])];
    let handle = router::spawn(RouterConfig::new(
        shards.iter().map(|s| s.addr.clone()).collect(),
    ))
    .expect("spawn router");
    let ring = ShardRing::with_default_vnodes(2);

    // The victim is whichever shard owns the slow sweep; the survivor gets
    // the control traffic.
    let sweep = slow_sweep_body(77);
    let victim = owner(&ring, &sweep);
    let survivor = 1 - victim;
    let survivor_alpha = alpha_owned_by(&ring, survivor);

    // Warm the survivor through the router before the fault.
    let control = connect(&handle.addr().to_string());
    let warm = rpc(&control, &solve_body(1, &survivor_alpha, "use"));
    assert_eq!(cache_disposition(&warm).as_deref(), Some("miss"));

    // Start the sweep, wait for the first streamed item, then crash the
    // victim with ~10 α solves still to stream.
    let streaming = connect(&handle.addr().to_string());
    let mut writer = BufWriter::new(streaming.try_clone().expect("clone"));
    write_frame(&mut writer, json::to_string(&sweep).as_bytes()).expect("write sweep");
    writer.flush().expect("flush sweep");
    let mut reader = BufReader::new(streaming.try_clone().expect("clone"));
    let first = read_frame(&mut reader)
        .expect("read")
        .expect("first stream frame");
    assert_eq!(
        parse(&first).get("stream").and_then(Json::as_str),
        Some("sweep_item"),
        "expected the stream to open with a sweep_item"
    );
    shards[victim].kill();

    // The stream must end with a terminal shard_unavailable for the sweep's
    // id — not hang, not pretend the sweep completed.
    let mut items = 1usize;
    let terminal = loop {
        let frame = read_frame(&mut reader)
            .expect("read")
            .expect("stream frame");
        if parse(&frame).get("stream").and_then(Json::as_str) == Some("sweep_item") {
            items += 1;
            continue;
        }
        break frame;
    };
    assert!(items < 12, "the kill landed after the whole sweep streamed");
    let terminal = parse(&terminal);
    assert_eq!(terminal.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(terminal.get("id").and_then(Json::as_u64), Some(77));
    assert_eq!(
        terminal
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("shard_unavailable")
    );

    // New requests for the dead shard's keys fail fast with the same code
    // (cooldown) — and keep failing across the reconnect attempt after it.
    let victim_alpha = alpha_owned_by(&ring, victim);
    let refused = rpc(&control, &solve_body(2, &victim_alpha, "use"));
    assert_eq!(error_code(&refused).as_deref(), Some("shard_unavailable"));
    std::thread::sleep(Duration::from_millis(300));
    let refused = rpc(&control, &solve_body(3, &victim_alpha, "use"));
    assert_eq!(error_code(&refused).as_deref(), Some("shard_unavailable"));

    // The survivor is untouched: cache still warm, bytes still identical to
    // asking it directly.
    let hit = rpc(&control, &solve_body(4, &survivor_alpha, "use"));
    assert_eq!(cache_disposition(&hit).as_deref(), Some("hit"));
    let probe = solve_body(5, &survivor_alpha, "bypass");
    assert_eq!(
        rpc(&control, &probe),
        rpc(&connect(&shards[survivor].addr), &probe)
    );

    handle.shutdown();
    shards[survivor].kill();
}

#[test]
fn restarted_shard_rejoins_with_its_cache_warm() {
    let cache_file = std::env::temp_dir().join(format!(
        "privmech-fleet-faults-{}.cache",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache_file);
    let cache_flag = cache_file.to_str().expect("temp path is UTF-8").to_string();

    let mut shards = vec![
        Shard::spawn(&["--cache-file", &cache_flag]),
        Shard::spawn(&[]),
    ];
    let handle = router::spawn(RouterConfig::new(
        shards.iter().map(|s| s.addr.clone()).collect(),
    ))
    .expect("spawn router");
    let ring = ShardRing::with_default_vnodes(2);
    let alpha = alpha_owned_by(&ring, 0);

    // Populate shard 0's cache through the router, then stop it gracefully
    // (the path that persists the cache to disk).
    let control = connect(&handle.addr().to_string());
    assert_eq!(
        cache_disposition(&rpc(&control, &solve_body(1, &alpha, "use"))).as_deref(),
        Some("miss")
    );
    assert_eq!(
        cache_disposition(&rpc(&control, &solve_body(2, &alpha, "use"))).as_deref(),
        Some("hit")
    );
    stop_gracefully(&mut shards[0]);
    assert!(
        cache_file.exists(),
        "graceful shutdown must dump the cache file"
    );

    // While shard 0 is down its keys are unavailable...
    let refused = rpc(&control, &solve_body(3, &alpha, "use"));
    assert_eq!(error_code(&refused).as_deref(), Some("shard_unavailable"));

    // ...until a replacement process (fresh port, same cache file) is
    // re-admitted. Ring ownership hashed the *index*, so the restarted
    // shard owns exactly its old keyspace — and its first request is
    // already a cache hit, loaded from the dump.
    shards[0] = Shard::spawn(&["--cache-file", &cache_flag]);
    handle.update_shard(0, shards[0].addr.clone());
    std::thread::sleep(Duration::from_millis(400)); // let the cooldown lapse
    let revived = rpc(&control, &solve_body(4, &alpha, "use"));
    assert_eq!(
        cache_disposition(&revived).as_deref(),
        Some("hit"),
        "restarted shard should have loaded its dumped cache: {:?}",
        String::from_utf8_lossy(&revived)
    );

    // A client-initiated shutdown through the router broadcasts to every
    // shard: both children exit without being killed.
    let reply = rpc(
        &control,
        &Json::obj()
            .with("v", Json::num_u64(2))
            .with("id", Json::num_u64(9))
            .with("op", Json::str("shutdown")),
    );
    assert!(parse(&reply).get("result").is_some());
    handle.join();
    for shard in &mut shards {
        let status = shard.child.wait().expect("reap shard");
        assert!(
            status.success(),
            "shard did not exit cleanly after broadcast shutdown"
        );
    }
    let _ = std::fs::remove_file(&cache_file);
}
