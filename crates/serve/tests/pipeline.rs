//! Pipelining contracts of protocol v2, driven through a real TCP server:
//! **N interleaved in-flight requests — mixed solve/sweep/interact, both
//! scalar backends, valid and invalid — return byte-identical results to
//! serial v1 request/response**, including under cache-eviction pressure
//! (tiny cache) and out-of-order completion (several workers, shuffled
//! waits).
//!
//! The serial v1 pass runs first, so the pipelined v2 pass sees a mix of
//! cache hits, misses (evicted under pressure) and negative-cache hits —
//! byte identity must hold through all of them; that is exactly the cached ≡
//! uncached ≡ v1 contract.

use std::collections::HashMap;

use privmech_numerics::{rat, Rational};
use privmech_serve::client::{Client, ClientError, Event};
use privmech_serve::json;
use privmech_serve::proto::{CacheMode, ConsumerSpec, LossSpec, WireScalar};
use privmech_serve::server::{self, ServerConfig};
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

/// One generated operation of the mixed workload.
#[derive(Debug, Clone)]
enum Op {
    /// `alpha_num / 7`; values above 7 are deliberately invalid (α > 1).
    Solve {
        n: usize,
        loss: usize,
        alpha_num: usize,
    },
    Sweep {
        n: usize,
        loss: usize,
        alpha_nums: Vec<usize>,
    },
    Interact {
        n: usize,
        loss: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    use proptest::prelude::*;
    prop_oneof![
        (2usize..=3, 0usize..4, 1usize..=9).prop_map(|(n, loss, alpha_num)| Op::Solve {
            n,
            loss,
            alpha_num
        }),
        (
            2usize..=3,
            0usize..4,
            proptest::collection::vec(1usize..=6, 1..=3)
        )
            .prop_map(|(n, loss, alpha_nums)| Op::Sweep {
                n,
                loss,
                alpha_nums
            }),
        (2usize..=3, 0usize..4).prop_map(|(n, loss)| Op::Interact { n, loss }),
    ]
}

fn loss_spec<T: WireScalar>(idx: usize) -> LossSpec<T> {
    match idx % 4 {
        0 => LossSpec::Absolute,
        1 => LossSpec::Squared,
        2 => LossSpec::ZeroOne,
        _ => LossSpec::Tolerance(1),
    }
}

/// A deployed mechanism for interacts: the uniform mechanism rows.
fn uniform_rows<T: WireScalar>(n: usize) -> Vec<Vec<T>> {
    let size = n + 1;
    let cell = T::one().div_ref(&T::from_i64(size as i64));
    vec![vec![cell; size]; size]
}

/// What one op produced: the result bytes, or a stable (code, message) error.
type Outcome = Result<String, (String, String)>;

fn outcome_err(e: ClientError) -> (String, String) {
    match e {
        ClientError::Server(e) => (e.code.to_string(), e.message),
        other => panic!("transport/protocol failure where a server reply was expected: {other}"),
    }
}

trait BackendAlpha: WireScalar {
    fn alpha(num: usize) -> Self;
}
impl BackendAlpha for Rational {
    fn alpha(num: usize) -> Self {
        rat(num as i64, 7)
    }
}
impl BackendAlpha for f64 {
    fn alpha(num: usize) -> Self {
        num as f64 / 7.0
    }
}

/// Run the workload serially over strict v1 request/response.
fn run_serial_v1<T: BackendAlpha>(addr: std::net::SocketAddr, ops: &[Op]) -> Vec<Outcome> {
    let mut client = Client::connect_with_version(addr, 1).expect("connect v1");
    assert_eq!(client.version(), 1);
    ops.iter()
        .map(|op| match op {
            Op::Solve { n, loss, alpha_num } => {
                let spec = ConsumerSpec::<T>::minimax(*n, loss_spec(*loss));
                client
                    .solve(&spec, &T::alpha(*alpha_num), CacheMode::Use)
                    .map(|r| r.raw)
                    .map_err(outcome_err)
            }
            Op::Sweep {
                n,
                loss,
                alpha_nums,
            } => {
                let spec = ConsumerSpec::<T>::minimax(*n, loss_spec(*loss));
                let alphas: Vec<T> = alpha_nums.iter().map(|&k| T::alpha(k)).collect();
                client
                    .sweep(&spec, &alphas, CacheMode::Use)
                    .map(|r| r.raw)
                    .map_err(outcome_err)
            }
            Op::Interact { n, loss } => {
                let spec = ConsumerSpec::<T>::minimax(*n, loss_spec(*loss));
                client
                    .interact(&spec, &uniform_rows::<T>(*n), CacheMode::Use)
                    .map(|r| r.raw)
                    .map_err(outcome_err)
            }
        })
        .collect()
}

/// Run the workload pipelined over v2: submit everything first, then drain
/// completions in whatever order the worker pool produces them.
fn run_pipelined_v2<T: BackendAlpha>(addr: std::net::SocketAddr, ops: &[Op]) -> Vec<Outcome> {
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.version(), 2, "negotiation must land on v2");

    struct Sweep {
        slots: Vec<Option<String>>,
        received: usize,
    }
    let mut tickets: HashMap<u64, usize> = HashMap::new();
    let mut sweeps: HashMap<u64, Sweep> = HashMap::new();
    let mut outcomes: Vec<Option<Outcome>> = (0..ops.len()).map(|_| None).collect();

    for (op_idx, op) in ops.iter().enumerate() {
        let ticket = match op {
            Op::Solve { n, loss, alpha_num } => {
                let spec = ConsumerSpec::<T>::minimax(*n, loss_spec(*loss));
                client
                    .submit_solve(&spec, &T::alpha(*alpha_num), CacheMode::Use)
                    .expect("submit solve")
            }
            Op::Sweep {
                n,
                loss,
                alpha_nums,
            } => {
                let spec = ConsumerSpec::<T>::minimax(*n, loss_spec(*loss));
                let alphas: Vec<T> = alpha_nums.iter().map(|&k| T::alpha(k)).collect();
                let ticket = client
                    .submit_sweep(&spec, &alphas, CacheMode::Use)
                    .expect("submit sweep");
                sweeps.insert(
                    ticket.id(),
                    Sweep {
                        slots: vec![None; alphas.len()],
                        received: 0,
                    },
                );
                ticket
            }
            Op::Interact { n, loss } => {
                let spec = ConsumerSpec::<T>::minimax(*n, loss_spec(*loss));
                client
                    .submit_interact(&spec, &uniform_rows::<T>(*n), CacheMode::Use)
                    .expect("submit interact")
            }
        };
        tickets.insert(ticket.id(), op_idx);
    }

    // Drain: completions arrive in completion order, not submission order.
    let mut open = ops.len();
    while open > 0 {
        let event = client.recv().expect("recv completion");
        let id = event.ticket().id();
        let &op_idx = tickets.get(&id).expect("completion for a known ticket");
        match event {
            Event::Reply { response, .. } => {
                if let Some(sweep) = sweeps.remove(&id) {
                    // v2 sweeps stream; a plain reply here would be a bug.
                    panic!(
                        "sweep answered monolithically after {} items",
                        sweep.received
                    );
                }
                let result = response.get("result").expect("reply carries a result");
                outcomes[op_idx] = Some(Ok(json::to_string(result)));
                open -= 1;
            }
            Event::Error { error, .. } => {
                outcomes[op_idx] = Some(Err((error.code.to_string(), error.message)));
                sweeps.remove(&id);
                open -= 1;
            }
            Event::SweepItem {
                index, response, ..
            } => {
                let sweep = sweeps.get_mut(&id).expect("items only for sweeps");
                let result = response.get("result").expect("item carries a result");
                assert!(
                    sweep.slots[index]
                        .replace(json::to_string(result))
                        .is_none(),
                    "index {index} streamed twice"
                );
                sweep.received += 1;
            }
            Event::SweepDone { response, .. } => {
                let sweep = sweeps.remove(&id).expect("done only for sweeps");
                assert_eq!(
                    sweep.received,
                    sweep.slots.len(),
                    "every item streams before sweep_done"
                );
                assert!(
                    response.get("cache").is_some(),
                    "sweep_done carries the cache disposition"
                );
                let mut raw = String::from("{\"solves\":[");
                for (k, slot) in sweep.slots.into_iter().enumerate() {
                    if k > 0 {
                        raw.push(',');
                    }
                    raw.push_str(&slot.expect("every index streamed"));
                }
                raw.push_str("]}");
                outcomes[op_idx] = Some(Ok(raw));
                open -= 1;
            }
        }
    }
    outcomes.into_iter().map(Option::unwrap).collect()
}

fn check_backend<T: BackendAlpha>(rng_label: &str) {
    // Tiny cache: eviction pressure is part of the property (a v2 request
    // may miss where v1 hit and vice versa; bytes must match regardless).
    let handle = server::spawn(ServerConfig {
        worker_threads: 4,
        cache_capacity: 4,
        cache_shards: 2,
        neg_cache_capacity: 4,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.addr();

    let strategy = proptest::collection::vec(op_strategy(), 8..=14);
    let mut rng = TestRng::deterministic(rng_label);
    for _ in 0..3 {
        let ops = strategy.generate(&mut rng);
        let serial = run_serial_v1::<T>(addr, &ops);
        let pipelined = run_pipelined_v2::<T>(addr, &ops);
        assert_eq!(serial.len(), pipelined.len());
        for (k, (s, p)) in serial.iter().zip(&pipelined).enumerate() {
            assert_eq!(s, p, "op {k} ({:?}) differs across transports", ops[k]);
        }
    }
    let stats = handle.cache_stats();
    assert!(
        stats.evictions > 0,
        "the tiny cache must have evicted: {stats:?}"
    );
    handle.shutdown();
}

#[test]
fn pipelined_v2_is_byte_identical_to_serial_v1_rational() {
    check_backend::<Rational>("pipeline::rational");
}

#[test]
fn pipelined_v2_is_byte_identical_to_serial_v1_f64() {
    check_backend::<f64>("pipeline::f64");
}

/// The submit/wait surface tolerates waiting in any order: completions for
/// other tickets are buffered, never lost.
#[test]
fn out_of_order_waits_buffer_other_completions() {
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
    let tickets: Vec<_> = (1..=5)
        .map(|k| {
            client
                .submit_solve(&spec, &rat(k, 7), CacheMode::Use)
                .expect("submit")
        })
        .collect();
    // Wait in reverse submission order.
    let mut raws = Vec::new();
    for ticket in tickets.iter().rev() {
        let response = client.wait(*ticket).expect("wait");
        let result = response.get("result").expect("result");
        raws.push(json::to_string(result));
    }
    raws.reverse();
    // Same answers as blocking solves of the same requests (cache hits now).
    for (k, raw) in raws.iter().enumerate() {
        let reply = client
            .solve(&spec, &rat(k as i64 + 1, 7), CacheMode::Use)
            .expect("solve");
        assert_eq!(*raw, reply.raw, "α = {}/7", k + 1);
    }
    handle.shutdown();
}

/// An uncached v2 sweep streams: every index arrives exactly once before the
/// terminal frame, and the per-item bytes match the blocking (monolithic)
/// form of the same request.
#[test]
fn streaming_sweep_items_match_the_monolithic_reply() {
    let handle = server::spawn(ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
    let alphas: Vec<Rational> = (1..=5).map(|k| rat(k, 7)).collect();

    // Stream with the cache bypassed: genuinely computed per α.
    let mut items: Vec<Option<String>> = vec![None; alphas.len()];
    let mut stream = client
        .sweep_stream(&spec, &alphas, CacheMode::Bypass)
        .expect("stream");
    for item in stream.by_ref() {
        let item = item.expect("streamed item");
        assert!(
            items[item.index].replace(item.raw).is_none(),
            "index {} twice",
            item.index
        );
    }
    let done = stream.done().expect("sweep_done");
    assert_eq!(done.count, alphas.len() as u64);
    assert_eq!(done.cache, privmech_serve::proto::CacheDisposition::Bypass);

    // Monolithic ground truth over the same connection.
    let blocking = client.sweep(&spec, &alphas, CacheMode::Use).expect("sweep");
    let joined = format!(
        "{{\"solves\":[{}]}}",
        items
            .into_iter()
            .map(Option::unwrap)
            .collect::<Vec<_>>()
            .join(",")
    );
    assert_eq!(joined, blocking.raw, "streamed ≡ monolithic, byte for byte");
    handle.shutdown();
}
