//! Consistent-hash ring properties the fleet tier depends on.
//!
//! The router's correctness contract — routed responses byte-identical to a
//! single process — only needs `shard_for` to be a *function* of the key.
//! But its *performance* contract (each shard's LRU stays hot on its slice
//! of the corpus, warm caches survive shard restarts) additionally needs:
//!
//! 1. **Stability**: the mapping is a pure function of `(shards, vnodes)`,
//!    so a router restart — or a second router replica — agrees on
//!    ownership with no coordination and no state carried across restarts.
//! 2. **Disjoint ownership**: every key has exactly one owner, and with the
//!    default virtual-node count no shard's share of a large corpus is
//!    degenerate (empty or dominant).
//! 3. **Minimal remap**: growing a ring of N by one shard moves only the
//!    keys the new shard captures — about 1/(N+1) of the corpus, every one
//!    of them moving *to* the new shard — instead of the ~100% an
//!    `hash % N` scheme reshuffles.

use rand::{rngs::StdRng, Rng, SeedableRng};

use privmech_numerics::{rat, Rational};
use privmech_serve::json::Json;
use privmech_serve::proto::{routing_key, ConsumerSpec, LossSpec, WireScalar};
use privmech_serve::ring::{ShardRing, DEFAULT_VNODES};

/// A seeded corpus shaped like the keys the router actually hashes: the
/// canonical routing keys of solve/sweep/interact requests over a spread of
/// population sizes and α points (see [`routing_key`]), which embed the
/// `"{op}|{tag}|{spec}|{payload}"` structure real traffic produces.
fn routing_key_corpus(seed: u64, len: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut corpus = Vec::with_capacity(len);
    while corpus.len() < len {
        let n = rng.gen_range(2usize..=9);
        let alpha = rat(rng.gen_range(1i64..=7), rng.gen_range(8i64..=64));
        let spec = ConsumerSpec::<Rational>::minimax(n, LossSpec::Absolute);
        let body = match rng.gen_range(0u8..3) {
            0 => spec
                .encode_onto(Json::obj().with("op", Json::str("solve")))
                .with("alpha", alpha.to_wire()),
            1 => spec
                .encode_onto(Json::obj().with("op", Json::str("sweep")))
                .with(
                    "alphas",
                    Json::Arr(vec![alpha.to_wire(), rat(1, 2).to_wire()]),
                ),
            _ => spec
                .encode_onto(Json::obj().with("op", Json::str("interact")))
                .with("mechanism", Json::str("optimal")),
        };
        let key = routing_key(&body).expect("compute requests always have a routing key");
        corpus.push(key);
    }
    corpus.sort();
    corpus.dedup();
    corpus
}

/// A larger synthetic corpus for the statistical properties (balance,
/// remap fraction), where we want enough distinct keys that the observed
/// fractions concentrate near their expectations.
fn synthetic_corpus(seed: u64, len: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| format!("solve|rational|corpus={i}|draw={}", rng.gen::<u64>()))
        .collect()
}

#[test]
fn mapping_is_stable_across_ring_reconstruction() {
    // Two independently constructed rings — as after a router restart, or
    // on a second router replica — agree on every key's owner.
    let first = ShardRing::new(5, DEFAULT_VNODES);
    let second = ShardRing::new(5, DEFAULT_VNODES);
    for key in routing_key_corpus(0xA11CE, 300) {
        assert_eq!(
            first.shard_for(&key),
            second.shard_for(&key),
            "ring reconstruction changed the owner of {key:?}"
        );
    }
}

#[test]
fn mapping_ignores_request_identity_but_not_content() {
    // Routing keys are derived from request *content*, so two spellings of
    // the same request (different id, different v) share an owner, while
    // changing the population size n moves to an independent key.
    let ring = ShardRing::with_default_vnodes(4);
    let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
    let body = |id: u64, v: u64| {
        spec.encode_onto(
            Json::obj()
                .with("v", Json::num_u64(v))
                .with("id", Json::num_u64(id))
                .with("op", Json::str("solve")),
        )
        .with("alpha", rat(1, 4).to_wire())
    };
    let key_a = routing_key(&body(1, 2)).unwrap();
    let key_b = routing_key(&body(999, 1)).unwrap();
    assert_eq!(key_a, key_b, "id and v must not affect the routing key");
    assert_eq!(ring.shard_for(&key_a), ring.shard_for(&key_b));

    let other = ConsumerSpec::<Rational>::minimax(4, LossSpec::Absolute)
        .encode_onto(Json::obj().with("op", Json::str("solve")))
        .with("alpha", rat(1, 4).to_wire());
    assert_ne!(key_a, routing_key(&other).unwrap());
}

#[test]
fn ownership_is_disjoint_and_every_shard_holds_a_sane_share() {
    const SHARDS: usize = 6;
    const KEYS: usize = 20_000;
    let ring = ShardRing::with_default_vnodes(SHARDS);
    let mut counts = [0usize; SHARDS];
    for key in synthetic_corpus(0xD15C0, KEYS) {
        let owner = ring.shard_for(&key);
        assert!(owner < SHARDS, "owner {owner} out of range for {key:?}");
        // Disjointness: shard_for is deterministic, so asking again cannot
        // hand the same key to a second shard.
        assert_eq!(owner, ring.shard_for(&key));
        counts[owner] += 1;
    }
    let uniform = KEYS / SHARDS;
    for (shard, &count) in counts.iter().enumerate() {
        // With 64 vnodes per shard the shares land within a few percent of
        // uniform; 2x bounds in both directions leave generous slack while
        // still catching a broken ring (empty or dominant shard).
        assert!(
            count > uniform / 2 && count < uniform * 2,
            "shard {shard} owns {count} of {KEYS} keys (uniform would be {uniform})"
        );
    }
}

#[test]
fn adding_a_shard_moves_only_its_fair_share_of_keys() {
    const KEYS: usize = 20_000;
    let corpus = synthetic_corpus(0x5EED, KEYS);
    for n in 1..=7usize {
        let before = ShardRing::with_default_vnodes(n);
        let after = ShardRing::with_default_vnodes(n + 1);
        let mut moved = 0usize;
        for key in &corpus {
            let old = before.shard_for(key);
            let new = after.shard_for(key);
            if old != new {
                // Consistency: a key never migrates between surviving
                // shards — the only possible new owner is the added shard.
                assert_eq!(
                    new, n,
                    "{key:?} moved from shard {old} to surviving shard {new}"
                );
                moved += 1;
            }
        }
        let expected = KEYS / (n + 1);
        // The expectation is KEYS/(n+1); allow 2x slack for vnode-placement
        // variance. An mod-N scheme would remap ~n/(n+1) of the corpus and
        // blow through this bound immediately.
        assert!(
            moved < expected * 2,
            "growing {n}->{} moved {moved} of {KEYS} keys (expected ~{expected})",
            n + 1
        );
        // And the new shard must actually capture a real share, or adding
        // capacity did nothing.
        assert!(
            moved > expected / 2,
            "growing {n}->{} moved only {moved} of {KEYS} keys (expected ~{expected})",
            n + 1
        );
    }
}
