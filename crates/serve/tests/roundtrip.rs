//! End-to-end contracts of the serving layer, driven through a real TCP
//! server:
//!
//! * **cached ≡ uncached, bit for bit** — for generated requests on both
//!   scalar backends, the cache-hit response, the cache-bypass response, and
//!   a direct in-process `PrivacyEngine` solve agree exactly;
//! * **concurrent hit/miss consistency** — many clients hammering the same
//!   key through the worker pool all read byte-identical responses and the
//!   counters account for every lookup;
//! * **error codes** — schema and validation failures surface with their
//!   stable codes, at every protocol layer (framing, JSON, schema, core).

use privmech_core::{PrivacyEngine, PrivacyLevel, SolveStrategy};
use privmech_numerics::{rat, Rational};
use privmech_serve::client::Client;
use privmech_serve::frame::{read_frame, write_frame};
use privmech_serve::json::{self, Json};
use privmech_serve::proto::{CacheDisposition, CacheMode, ConsumerSpec, LossSpec, WireScalar};
use privmech_serve::server::{self, ServerConfig};
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

fn test_server() -> server::ServerHandle {
    server::spawn(ServerConfig {
        worker_threads: 4,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// A generated minimax request shape shared by both backends.
#[derive(Debug, Clone)]
struct Shape {
    n: usize,
    support: Option<Vec<usize>>,
    loss: usize,
    alpha_num: usize,
    direct: bool,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        2usize..=4,
        0usize..4,
        1usize..=6,
        0usize..32,
        proptest::arbitrary::any::<bool>(),
    )
        .prop_map(|(n, loss, alpha_num, mask, direct)| {
            let members: Vec<usize> = (0..=n).filter(|i| mask & (1 << i) != 0).collect();
            Shape {
                n,
                support: (!members.is_empty()).then_some(members),
                loss,
                alpha_num,
                direct,
            }
        })
}

fn loss_spec<T: WireScalar>(idx: usize) -> LossSpec<T> {
    match idx % 4 {
        0 => LossSpec::Absolute,
        1 => LossSpec::Squared,
        2 => LossSpec::ZeroOne,
        _ => LossSpec::Tolerance(1),
    }
}

fn spec_of<T: WireScalar>(shape: &Shape) -> ConsumerSpec<T> {
    let mut spec = ConsumerSpec::<T>::minimax(shape.n, loss_spec(shape.loss));
    if let Some(support) = &shape.support {
        spec = spec.with_support(support.clone());
    }
    if shape.direct {
        spec = spec.with_strategy(SolveStrategy::DirectLp);
    }
    spec
}

/// The property, checked per generated shape: hit ≡ bypass ≡ in-process
/// engine solve, bit for bit.
fn check_solve_identity<T: WireScalar>(client: &mut Client, spec: &ConsumerSpec<T>, alpha: T) {
    let first = client.solve(spec, &alpha, CacheMode::Use).expect("solve");
    let second = client
        .solve(spec, &alpha, CacheMode::Use)
        .expect("re-solve");
    let bypass = client
        .solve(spec, &alpha, CacheMode::Bypass)
        .expect("bypass solve");
    assert_eq!(
        second.cache,
        CacheDisposition::Hit,
        "second identical request must hit"
    );
    assert_eq!(bypass.cache, CacheDisposition::Bypass);
    assert_eq!(
        first.raw, second.raw,
        "cached response must be byte-identical"
    );
    assert_eq!(first.raw, bypass.raw, "bypass must render the same bytes");

    // Ground truth: the same request solved in-process.
    let request = spec.to_request(alpha).expect("valid request");
    let local = PrivacyEngine::with_threads(1)
        .solve(&request)
        .expect("solvable");
    assert_eq!(second.value.loss, local.loss, "wire loss ≡ engine loss");
    assert_eq!(second.value.stats, local.stats);
    let local_rows: Vec<Vec<T>> = local
        .mechanism
        .matrix()
        .row_iter()
        .map(<[T]>::to_vec)
        .collect();
    assert_eq!(
        second.value.mechanism, local_rows,
        "wire mech ≡ engine mech"
    );
}

#[test]
fn cached_solves_are_bit_identical_to_uncached_rational() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let strategy = shape_strategy();
    let mut rng = TestRng::deterministic("roundtrip::rational");
    for _ in 0..10 {
        let shape = strategy.generate(&mut rng);
        let alpha = rat(shape.alpha_num as i64, 7);
        check_solve_identity::<Rational>(&mut client, &spec_of(&shape), alpha);
    }
    let stats = handle.cache_stats();
    assert!(
        stats.hits >= 10,
        "one hit per generated case, got {stats:?}"
    );
    handle.shutdown();
}

#[test]
fn cached_solves_are_bit_identical_to_uncached_f64() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let strategy = shape_strategy();
    let mut rng = TestRng::deterministic("roundtrip::f64");
    for _ in 0..10 {
        let shape = strategy.generate(&mut rng);
        let alpha = shape.alpha_num as f64 / 7.0;
        check_solve_identity::<f64>(&mut client, &spec_of(&shape), alpha);
    }
    handle.shutdown();
}

#[test]
fn sweep_round_trips_and_caches_whole_batches() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
    let alphas = vec![rat(1, 5), rat(1, 4), rat(1, 2)];

    let first = client.sweep(&spec, &alphas, CacheMode::Use).expect("sweep");
    let second = client.sweep(&spec, &alphas, CacheMode::Use).expect("sweep");
    assert_eq!(second.cache, CacheDisposition::Hit);
    assert_eq!(first.raw, second.raw);
    assert_eq!(first.value.len(), 3);

    // Order matters: the reversed batch is a different cache entry but must
    // contain the same solves reversed.
    let reversed: Vec<Rational> = alphas.iter().rev().cloned().collect();
    let third = client
        .sweep(&spec, &reversed, CacheMode::Use)
        .expect("sweep");
    assert_eq!(third.cache, CacheDisposition::Miss);
    for (a, b) in first.value.iter().zip(third.value.iter().rev()) {
        assert_eq!(a.loss, b.loss);
        assert_eq!(a.mechanism, b.mechanism);
    }

    // Ground truth against the in-process engine sweep.
    let request = spec.to_request(rat(1, 5)).unwrap();
    let levels: Vec<PrivacyLevel<Rational>> = alphas
        .iter()
        .map(|a| PrivacyLevel::new(a.clone()).unwrap())
        .collect();
    let local = PrivacyEngine::with_threads(1)
        .sweep(&levels, &request)
        .unwrap();
    for (wire, engine) in first.value.iter().zip(&local) {
        assert_eq!(wire.loss, engine.loss);
        assert_eq!(wire.stats, engine.stats);
    }
    handle.shutdown();
}

#[test]
fn interact_round_trips_and_ignores_alpha_for_caching() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let engine = PrivacyEngine::with_threads(1);
    let level = PrivacyLevel::new(rat(1, 4)).unwrap();
    let deployed = engine.geometric::<Rational>(3, &level).unwrap();
    let rows: Vec<Vec<Rational>> = deployed
        .matrix()
        .row_iter()
        .map(<[Rational]>::to_vec)
        .collect();

    let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Squared);
    let first = client
        .interact(&spec, &rows, CacheMode::Use)
        .expect("interact");
    // The strategy field is normalized out of the interact cache key.
    let respec = spec.clone().with_strategy(SolveStrategy::DirectLp);
    let second = client
        .interact(&respec, &rows, CacheMode::Use)
        .expect("interact");
    assert_eq!(second.cache, CacheDisposition::Hit);
    assert_eq!(first.raw, second.raw);

    // Ground truth.
    let request = spec.to_request(Rational::zero()).unwrap();
    let local = engine.interact(&deployed, &request).unwrap();
    assert_eq!(first.value.loss, local.loss);
    assert_eq!(first.value.stats, local.lp_stats);
    handle.shutdown();
}

#[test]
fn concurrent_clients_read_identical_bytes_through_the_pool() {
    let handle = test_server();
    let addr = handle.addr();
    let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
    let raws: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let spec = spec.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut raws = Vec::new();
                    for _ in 0..4 {
                        let reply = client
                            .solve(&spec, &rat(1, 3), CacheMode::Use)
                            .expect("solve");
                        raws.push(reply.raw);
                    }
                    raws
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(raws.len(), 24);
    assert!(
        raws.iter().all(|r| r == &raws[0]),
        "every client must read byte-identical responses"
    );
    let stats = handle.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        24,
        "every lookup is a hit or a miss: {stats:?}"
    );
    assert!(stats.misses >= 1, "someone computed it");
    assert!(stats.hits >= 24 - 6, "at most one miss per racing client");
    handle.shutdown();
}

#[test]
fn verify_hits_mode_asserts_identity_on_every_hit() {
    let handle = server::spawn(ServerConfig {
        verify_hits: true,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let spec = ConsumerSpec::<Rational>::minimax(2, LossSpec::Absolute);
    let first = client.solve(&spec, &rat(1, 2), CacheMode::Use).unwrap();
    // Each of these hits re-solves server-side and asserts byte identity; a
    // mismatch would surface as a `cache_verify_failed` error.
    for _ in 0..3 {
        let hit = client.solve(&spec, &rat(1, 2), CacheMode::Use).unwrap();
        assert_eq!(hit.cache, CacheDisposition::Hit);
        assert_eq!(hit.raw, first.raw);
    }
    handle.shutdown();
}

#[test]
fn validation_failures_keep_their_stable_codes() {
    use privmech_serve::client::ClientError;
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    let code_of = |err: ClientError| match err {
        ClientError::Server(e) => e.code,
        other => panic!("expected a server error, got {other:?}"),
    };

    let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
    let err = client.solve(&spec, &rat(3, 2), CacheMode::Use).unwrap_err();
    assert_eq!(code_of(err), "invalid_alpha");

    let bad_support = spec.clone().with_support(vec![9]);
    let err = client
        .solve(&bad_support, &rat(1, 4), CacheMode::Use)
        .unwrap_err();
    assert_eq!(code_of(err), "invalid_side_information");

    let bad_prior = ConsumerSpec::<Rational>::bayesian(
        vec![rat(1, 2), rat(1, 3)], // sums to 5/6
        LossSpec::Absolute,
    );
    let err = client
        .solve(&bad_prior, &rat(1, 4), CacheMode::Use)
        .unwrap_err();
    assert_eq!(code_of(err), "invalid_prior");

    let err = client
        .call(Json::obj().with("op", Json::str("frobnicate")))
        .unwrap_err();
    assert_eq!(code_of(err), "unknown_op");

    let err = client
        .call(
            Json::obj()
                .with("op", Json::str("solve"))
                .with("scalar", Json::str("posit16")),
        )
        .unwrap_err();
    assert_eq!(code_of(err), "unsupported_scalar");

    // Interact with a non-stochastic mechanism.
    let err = client
        .interact(&spec, &vec![vec![rat(1, 1); 4]; 4], CacheMode::Use)
        .unwrap_err();
    assert_eq!(code_of(err), "invalid_mechanism");

    handle.shutdown();
}

/// Below the typed client: raw frames exercise the version gate and the
/// malformed-JSON path.
#[test]
fn raw_protocol_rejections() {
    let handle = test_server();
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();

    let call = |stream: &mut std::net::TcpStream, payload: &[u8]| -> Json {
        write_frame(stream, payload).unwrap();
        let bytes = read_frame(stream).unwrap().expect("a response frame");
        json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap()
    };
    let code = |response: &Json| -> String {
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        response
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .expect("an error code")
            .to_string()
    };

    let response = call(&mut stream, br#"{"v":99,"op":"ping","id":1}"#);
    assert_eq!(code(&response), "unsupported_version");

    let response = call(&mut stream, br#"{"op":"ping"}"#);
    assert_eq!(
        code(&response),
        "unsupported_version",
        "missing v is rejected"
    );

    let response = call(&mut stream, br#"{"v":1}"#);
    assert_eq!(code(&response), "bad_request", "op is required");

    let response = call(&mut stream, b"this is not json");
    assert_eq!(code(&response), "malformed_json");

    // Both majors are accepted per frame; v2 requires a correlation id.
    let response = call(&mut stream, br#"{"v":1,"op":"ping"}"#);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let response = call(&mut stream, br#"{"v":2,"op":"ping","id":7}"#);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(7));
    let response = call(&mut stream, br#"{"v":2,"op":"ping"}"#);
    assert_eq!(code(&response), "bad_request", "v2 without id is rejected");

    // Unknown fields are ignored (forward compatibility within a major).
    let response = call(
        &mut stream,
        br#"{"v":1,"op":"ping","future_field":{"x":[1,2,3]}}"#,
    );
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));

    handle.shutdown();
}

#[test]
fn shutdown_op_stops_the_server() {
    let handle = test_server();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    // join returns once the accept loop and workers exit.
    handle.join();
    // The listener is gone; a fresh connection must fail (immediately or on
    // first use).
    let refused = match std::net::TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut stream) => write_frame(&mut stream, br#"{"v":1,"op":"ping"}"#)
            .and_then(|()| read_frame(&mut stream))
            .map(|frame| frame.is_none())
            .unwrap_or(true),
    };
    assert!(refused, "server must stop serving after shutdown");
}
