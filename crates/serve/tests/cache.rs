//! Cache contracts: exact LRU eviction order, counter accounting, and
//! hit/miss consistency under concurrent access.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use privmech_serve::cache::ShardedCache;

#[test]
fn lru_eviction_follows_use_order_not_insertion_order() {
    let cache: ShardedCache<String> = ShardedCache::new(4, 1);
    for key in ["a", "b", "c", "d"] {
        cache.insert(key, key.to_uppercase());
    }
    // Use order (oldest use first) is now a, b, c, d. Touch a and b so the
    // victims become c, then d.
    assert!(cache.get("a").is_some());
    assert!(cache.get("b").is_some());
    cache.insert("e", "E".to_string());
    cache.insert("f", "F".to_string());
    assert_eq!(cache.get("c"), None, "c was least recently used");
    assert_eq!(cache.get("d"), None, "d was next");
    for key in ["a", "b", "e", "f"] {
        assert!(cache.get(key).is_some(), "{key} must survive");
    }
    assert_eq!(cache.stats().evictions, 2);
}

#[test]
fn counters_account_for_every_lookup() {
    // Per-shard capacity 64: even if every key landed in one shard, nothing
    // would evict, so the counter assertions below are deterministic.
    let cache: ShardedCache<u64> = ShardedCache::new(256, 4);
    let mut expected_hits = 0;
    let mut expected_misses = 0;
    for round in 0..3u64 {
        for k in 0..20u64 {
            match cache.get(&format!("key-{k}")) {
                Some(v) => {
                    assert_eq!(v, k, "cached value must be the inserted one");
                    expected_hits += 1;
                }
                None => {
                    expected_misses += 1;
                    cache.insert(&format!("key-{k}"), k);
                }
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, expected_hits, "round {round}");
        assert_eq!(stats.misses, expected_misses, "round {round}");
        assert_eq!(stats.evictions, 0, "20 keys can never overflow a shard");
    }
    // First round all misses, later rounds all hits.
    assert_eq!(expected_misses, 20);
    assert_eq!(expected_hits, 40);
}

/// Hammer one cache from many threads: every hit must return exactly the
/// value some thread inserted for that key (values are keyed functions, so
/// any interleaving of insert/get must stay consistent), and the global
/// counters must account for exactly every lookup.
#[test]
fn concurrent_hits_and_misses_stay_consistent() {
    // Per-shard capacity 64 ≥ total distinct keys: eviction-free by
    // construction regardless of how keys hash across shards.
    let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(512, 8));
    let lookups = Arc::new(AtomicU64::new(0));
    let threads = 8;
    let per_thread = 2_000u64;
    let keys = 64u64; // far fewer keys than lookups: plenty of contention
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            let lookups = Arc::clone(&lookups);
            scope.spawn(move || {
                // Thread-local xorshift so threads interleave differently.
                let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (t as u64 + 1);
                for _ in 0..per_thread {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let k = state % keys;
                    let key = format!("item-{k}");
                    lookups.fetch_add(1, Ordering::Relaxed);
                    match cache.get(&key) {
                        Some(v) => assert_eq!(v, k * k, "corrupted value for {key}"),
                        None => cache.insert(&key, k * k),
                    }
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        lookups.load(Ordering::Relaxed),
        "every lookup is either a hit or a miss"
    );
    assert_eq!(stats.evictions, 0, "64 keys can never overflow a shard");
    assert!(stats.entries <= keys as usize);
    // With 16k lookups over 64 keys, the steady state is all-hits.
    assert!(stats.hits > stats.misses, "cache must actually serve hits");
    for k in 0..keys {
        assert_eq!(cache.get(&format!("item-{k}")), Some(k * k));
    }
}

/// Concurrent writers under heavy eviction pressure: the cache must stay
/// internally consistent (no panics, no cross-wired values) even when every
/// insert evicts.
#[test]
fn concurrent_eviction_pressure_keeps_values_keyed() {
    let cache: Arc<ShardedCache<String>> = Arc::new(ShardedCache::new(8, 2));
    std::thread::scope(|scope| {
        for t in 0..4 {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for i in 0..1_000u64 {
                    let k = (t as u64) * 1_000 + i;
                    let key = format!("k{k}");
                    cache.insert(&key, format!("v{k}"));
                    if let Some(v) = cache.get(&key) {
                        assert_eq!(v, format!("v{k}"));
                    }
                }
            });
        }
    });
    let stats = cache.stats();
    assert!(stats.entries <= 8);
    assert!(stats.evictions >= 4_000 - 8, "almost every insert evicted");
}
