//! Property tests for the lexical sweep splitter: [`split_solves`] must be
//! the exact inverse of [`assemble_solves`] on adversarial item renderings —
//! escaped quotes, backslash runs, unicode escapes, commas and brackets
//! buried inside strings, and arrays/objects nested several levels deep.

use privmech_serve::proto::{assemble_solves, split_solves};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Render one adversarial JSON value. `depth` bounds recursion; the leaves
/// lean hard on the splitter's weak spots: quotes, escapes, and separators
/// that are *data*, not structure.
fn render_value(rng: &mut StdRng, depth: usize) -> String {
    let choice = if depth == 0 {
        rng.gen_range(0..4u32)
    } else {
        rng.gen_range(0..6u32)
    };
    match choice {
        // Adversarial string literals.
        0 => {
            let mut s = String::from("\"");
            for _ in 0..rng.gen_range(0..6usize) {
                match rng.gen_range(0..8u32) {
                    0 => s.push_str("\\\""),    // escaped quote
                    1 => s.push_str("\\\\"),    // escaped backslash
                    2 => s.push_str("\\u00e9"), // unicode escape
                    3 => s.push_str("\\u007d"), // unicode-escaped '}'
                    4 => s.push(','),           // separator as data
                    5 => s.push_str("]}"),      // envelope closer as data
                    6 => s.push_str("{["),      // openers as data
                    _ => s.push('x'),
                }
            }
            s.push('"');
            s
        }
        1 => format!("{}", rng.gen_range(-999i64..=999)),
        2 => "null".into(),
        3 => if rng.gen_bool(0.5) { "true" } else { "false" }.into(),
        // Nested array.
        4 => {
            let n = rng.gen_range(0..4usize);
            let inner: Vec<String> = (0..n).map(|_| render_value(rng, depth - 1)).collect();
            format!("[{}]", inner.join(","))
        }
        // Nested object.
        _ => {
            let n = rng.gen_range(0..3usize);
            let inner: Vec<String> = (0..n)
                .map(|k| format!("\"k{k}\":{}", render_value(rng, depth - 1)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// A batch of adversarial sweep-item renderings, deterministic in the seed.
fn render_items(seed: u64, count: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| render_value(&mut rng, 3)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Split-then-concat round-trips byte-exactly: every slice equals the
    /// item originally assembled, the count matches the input, and
    /// reassembling the split reproduces the monolithic bytes.
    #[test]
    fn split_inverts_assemble_on_adversarial_items(
        seed in any::<u64>(),
        count in 0usize..8,
    ) {
        let items = render_items(seed, count);
        let monolithic = assemble_solves(items.iter().map(String::as_str));
        let split = split_solves(&monolithic).expect("assembled shape must split");
        prop_assert_eq!(split.len(), items.len(), "item count must match assemble input");
        for (got, want) in split.iter().zip(items.iter()) {
            prop_assert_eq!(*got, want.as_str(), "slice must be byte-identical");
        }
        let reassembled = assemble_solves(split.into_iter());
        prop_assert_eq!(reassembled, monolithic, "concat must round-trip byte-exactly");
    }
}

#[test]
fn empty_sweep_splits_to_no_items() {
    let monolithic = assemble_solves(std::iter::empty());
    assert_eq!(monolithic, "{\"solves\":[]}");
    assert_eq!(split_solves(&monolithic), Some(Vec::new()));
}

#[test]
fn malformed_envelopes_are_rejected() {
    // Wrong envelope.
    assert_eq!(split_solves("{\"sweep\":[1,2]}"), None);
    assert_eq!(split_solves("{\"solves\":[1,2]"), None);
    // Unbalanced nesting.
    assert_eq!(split_solves("{\"solves\":[[1,2]}"), None);
    assert_eq!(split_solves("{\"solves\":[{\"a\":1]}"), None);
    assert_eq!(split_solves("{\"solves\":[1]]]}"), None);
    // Unterminated string.
    assert_eq!(split_solves("{\"solves\":[\"abc]}"), None);
    // A close before any open underflows the depth counter.
    assert_eq!(split_solves("{\"solves\":[}{]}"), None);
}

#[test]
fn separators_inside_strings_do_not_split() {
    let items = ["\"a,b\"", "\"c]}\"", "\"\\\",\\\"\"", "\"\\u002c\""];
    let monolithic = assemble_solves(items.iter().copied());
    let split = split_solves(&monolithic).unwrap();
    assert_eq!(split, items);
}
