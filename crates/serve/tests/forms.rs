//! Serving-layer half of the dense ≡ revised regression (PR 4): cache
//! entries produced by the pre-refactor server (which always ran the dense
//! tableau) must still be addressed by the same keys and verify
//! byte-identically under the revised-simplex default.
//!
//! The server renders a response as a pure function of the engine's `Solve`
//! (`solve_to_wire` in `server.rs`) and keys it on
//! `ValidatedRequest::fingerprint`. So the pre-refactor compatibility claim
//! decomposes into exactly the three facts asserted here:
//!
//! 1. the fingerprint ignores the solver form (old keys == new keys),
//! 2. a dense-form `Solve` equals a revised-form `Solve` field for field
//!    (old cached bytes == new rendered bytes),
//! 3. the live `--verify-hits` path — which re-solves every hit with
//!    today's default options and asserts byte identity against the cached
//!    rendering — passes against entries already in the cache.

use privmech_core::{PrivacyEngine, SolveStrategy};
use privmech_lp::{SolverForm, SolverOptions};
use privmech_numerics::{rat, Rational};
use privmech_serve::client::Client;
use privmech_serve::proto::{CacheDisposition, CacheMode, ConsumerSpec, LossSpec};
use privmech_serve::server::{self, ServerConfig};

#[test]
fn pre_refactor_cache_entries_survive_the_revised_default() {
    let n = 3;
    let alpha = rat(1, 4);
    let spec = ConsumerSpec::<Rational>::minimax(n, LossSpec::Absolute);

    // Fact 1: the wire request's fingerprint — the cache key — is identical
    // whether the solver options pin the dense form (what the pre-refactor
    // server effectively ran) or today's defaults.
    let validated = spec.to_request(alpha.clone()).expect("valid spec");
    let dense_key = validated
        .clone()
        .with_options(SolverOptions {
            form: SolverForm::Dense,
            ..SolverOptions::default()
        })
        .fingerprint();
    assert_eq!(
        validated.fingerprint(),
        dense_key,
        "solver form must not split the serve cache key"
    );

    // Fact 2: the Solve the pre-refactor server rendered (dense form) equals
    // the Solve today's server renders (revised default) in every field the
    // wire format serializes: α, loss, mechanism, stats.
    let engine = PrivacyEngine::with_threads(1);
    let dense = engine
        .solve(&validated.clone().with_options(SolverOptions {
            form: SolverForm::Dense,
            ..SolverOptions::default()
        }))
        .expect("solvable");
    let revised = engine
        .solve(&validated.clone().with_options(SolverOptions {
            form: SolverForm::Revised,
            ..SolverOptions::default()
        }))
        .expect("solvable");
    assert_eq!(dense.level.alpha(), revised.level.alpha());
    assert_eq!(dense.loss, revised.loss);
    assert_eq!(dense.mechanism, revised.mechanism);
    assert_eq!(dense.stats, revised.stats);

    // Fact 3: a verify-hits server accepts its own cached entries — every
    // hit re-solves with the default (revised) options and byte-compares
    // against the cached rendering; a divergence surfaces as a
    // `cache_verify_failed` wire error and fails this test.
    let handle = server::spawn(ServerConfig {
        verify_hits: true,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let first = client.solve(&spec, &alpha, CacheMode::Use).expect("miss");
    assert_eq!(first.cache, CacheDisposition::Miss);
    let hit = client.solve(&spec, &alpha, CacheMode::Use).expect("hit");
    assert_eq!(hit.cache, CacheDisposition::Hit);
    assert_eq!(hit.raw, first.raw, "verified hit must return cached bytes");
    let bypass = client
        .solve(&spec, &alpha, CacheMode::Bypass)
        .expect("bypass");
    assert_eq!(
        bypass.raw, first.raw,
        "a fresh uncached solve must render the same bytes"
    );
    handle.shutdown();
}

#[test]
fn direct_strategy_entries_are_form_stable_too() {
    // DirectLp responses embed the Section 2.5 LP's optimal vertex itself —
    // the shape most sensitive to any pivot-sequence change. Byte-compare a
    // real server's responses across a cache round trip.
    let handle = server::spawn(ServerConfig {
        verify_hits: true,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute)
        .with_strategy(SolveStrategy::DirectLp);
    for alpha in [rat(1, 3), rat(1, 2)] {
        let miss = client.solve(&spec, &alpha, CacheMode::Use).expect("miss");
        let hit = client.solve(&spec, &alpha, CacheMode::Use).expect("hit");
        assert_eq!(miss.raw, hit.raw);
        assert_eq!(hit.cache, CacheDisposition::Hit);
    }
    handle.shutdown();
}
