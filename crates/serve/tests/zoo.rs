//! End-to-end contracts of the zoo operations (`zoo_table`, `zoo_eval`):
//!
//! * **cached ≡ uncached ≡ bypass, bit for bit** — for generated zoo
//!   requests on both scalar backends, the cache-hit reply, the fresh reply,
//!   and the cache-bypass reply are byte-identical;
//! * **the paper's boundary, over the wire** — the count table collapses to
//!   the geometric row (Theorem 1) while the sum and median tables expose a
//!   non-dominated candidate pair (the Brenner–Nissim counterexamples), all
//!   read back from the serving tier with exact `Rational` payloads;
//! * **fleet transparency** — zoo replies routed through `privmech-router`
//!   are byte-identical to asking the owning shard directly, and the fleet
//!   `metrics` reply breaks per-op latency down per shard.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use privmech_numerics::{rat, Rational};
use privmech_serve::client::Client;
use privmech_serve::frame::{read_frame, write_frame};
use privmech_serve::json::{self, Json};
use privmech_serve::proto::{routing_key, CacheDisposition, CacheMode, LossSpec, WireScalar};
use privmech_serve::ring::ShardRing;
use privmech_serve::router::{self, RouterConfig};
use privmech_serve::server::{self, ServerConfig};
use privmech_serve::zoo::{query_to_wire, ZooAgentSpec, ZooConsumerSpec};
use privmech_zoo::{LdpProtocol, QueryClass};
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

fn test_server() -> server::ServerHandle {
    server::spawn(ServerConfig {
        worker_threads: 4,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// The regret-table panel pinned by the zoo crate's unit tests: a full
/// absolute consumer, a full zero-one consumer, and an endpoints-only
/// absolute consumer.
fn panel<T: WireScalar>(bound: usize) -> Vec<ZooConsumerSpec<T>> {
    vec![
        ZooConsumerSpec {
            support: None,
            loss: LossSpec::Absolute,
        },
        ZooConsumerSpec {
            support: None,
            loss: LossSpec::ZeroOne,
        },
        ZooConsumerSpec {
            support: Some(vec![0, bound]),
            loss: LossSpec::Absolute,
        },
    ]
}

/// A generated zoo-table shape shared by both backends.
#[derive(Debug, Clone)]
struct Shape {
    query: QueryClass,
    consumers: usize,
    losses: [usize; 3],
    endpoints: bool,
    alpha_num: usize,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        0usize..3,
        2usize..=4,
        1usize..=3,
        (0usize..3, 0usize..3, 0usize..3),
        proptest::arbitrary::any::<bool>(),
        1usize..=6,
    )
        .prop_map(|(kind, n, consumers, losses, endpoints, alpha_num)| Shape {
            query: match kind {
                0 => QueryClass::Count { n },
                1 => QueryClass::Sum {
                    rows: 2,
                    per_row: 2,
                },
                _ => QueryClass::Median { rows: 3, domain: 3 },
            },
            consumers,
            losses: [losses.0, losses.1, losses.2],
            endpoints,
            alpha_num,
        })
}

fn consumers_of<T: WireScalar>(shape: &Shape) -> Vec<ZooConsumerSpec<T>> {
    let bound = shape.query.result_bound();
    (0..shape.consumers)
        .map(|i| ZooConsumerSpec {
            support: (shape.endpoints && i == 0).then(|| vec![0, bound]),
            loss: match shape.losses[i] {
                0 => LossSpec::Absolute,
                1 => LossSpec::ZeroOne,
                _ => LossSpec::Squared,
            },
        })
        .collect()
}

/// The property, checked per generated shape: hit ≡ fresh ≡ bypass, bit for
/// bit.
fn check_table_identity<T: WireScalar>(
    client: &mut Client,
    query: &QueryClass,
    alpha: T,
    consumers: &[ZooConsumerSpec<T>],
) {
    let first = client
        .zoo_table(query, &alpha, consumers, CacheMode::Use)
        .expect("zoo_table");
    let second = client
        .zoo_table(query, &alpha, consumers, CacheMode::Use)
        .expect("zoo_table again");
    let bypass = client
        .zoo_table(query, &alpha, consumers, CacheMode::Bypass)
        .expect("zoo_table bypass");
    assert_eq!(
        second.cache,
        CacheDisposition::Hit,
        "second identical zoo_table must hit"
    );
    assert_eq!(bypass.cache, CacheDisposition::Bypass);
    assert_eq!(
        first.raw, second.raw,
        "cached zoo reply must be byte-identical"
    );
    assert_eq!(first.raw, bypass.raw, "bypass must render the same bytes");
    // The reply is canonical JSON: parse → re-render is the identity.
    let reparsed = json::parse(&first.raw).expect("reply parses");
    assert_eq!(json::to_string(&reparsed), first.raw);
}

#[test]
fn zoo_tables_are_bit_identical_cached_uncached_bypassed_rational() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let strategy = shape_strategy();
    let mut rng = TestRng::deterministic("zoo::rational");
    for _ in 0..6 {
        let shape = strategy.generate(&mut rng);
        let alpha = rat(shape.alpha_num as i64, 7);
        check_table_identity::<Rational>(&mut client, &shape.query, alpha, &consumers_of(&shape));
    }
    let stats = handle.cache_stats();
    assert!(stats.hits >= 6, "one hit per generated case, got {stats:?}");
    handle.shutdown();
}

#[test]
fn zoo_tables_are_bit_identical_cached_uncached_bypassed_f64() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let strategy = shape_strategy();
    let mut rng = TestRng::deterministic("zoo::f64");
    for _ in 0..4 {
        let shape = strategy.generate(&mut rng);
        let alpha = shape.alpha_num as f64 / 7.0;
        check_table_identity::<f64>(&mut client, &shape.query, alpha, &consumers_of(&shape));
    }
    handle.shutdown();
}

#[test]
fn count_table_collapses_to_geometric_over_the_wire() {
    // Theorem 1 read back from the serving tier: the geometric candidate
    // dominates every consumer of the count panel, and the paper's pinned
    // optimum anchors the absolute column.
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client
        .zoo_table(
            &QueryClass::Count { n: 3 },
            &rat(1, 4),
            &panel::<Rational>(3),
            CacheMode::Use,
        )
        .expect("count table");
    let candidates = reply
        .value
        .get("candidates")
        .and_then(Json::as_arr)
        .unwrap();
    let g = candidates
        .iter()
        .position(|c| c.as_str() == Some("geometric"))
        .expect("count tables carry the geometric candidate");
    let dominant = reply.value.get("dominant").and_then(Json::as_arr).unwrap();
    assert!(
        dominant.iter().any(|d| d.as_usize() == Some(g)),
        "geometric must dominate the count table: {dominant:?}"
    );
    assert!(
        matches!(reply.value.get("non_dominated_pair"), Some(Json::Null)),
        "a dominated count table has no counterexample pair"
    );
    // Exact pinned anchor: Table 1(a) of the paper.
    let opt = reply.value.get("opt").and_then(Json::as_arr).unwrap();
    assert_eq!(opt[0].as_str(), Some("168/415"));
    // The geometric row's regrets are identically zero.
    let regrets = reply.value.get("regrets").and_then(Json::as_arr).unwrap();
    for cell in regrets[g].as_arr().unwrap() {
        assert_eq!(cell.as_str(), Some("0"));
    }
    handle.shutdown();
}

#[test]
fn sum_and_median_tables_expose_non_dominated_pairs_over_the_wire() {
    // The Brenner–Nissim boundary, served: beyond counts no candidate
    // dominates, and the reply names a mutually-regretful pair exactly.
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let cases = [
        (
            QueryClass::Sum {
                rows: 2,
                per_row: 2,
            },
            4usize,
        ),
        (QueryClass::Median { rows: 3, domain: 3 }, 3usize),
    ];
    for (query, bound) in cases {
        let reply = client
            .zoo_table(
                &query,
                &rat(1, 2),
                &panel::<Rational>(bound),
                CacheMode::Use,
            )
            .expect("table");
        let dominant = reply.value.get("dominant").and_then(Json::as_arr).unwrap();
        assert!(
            dominant.is_empty(),
            "{} table should have no dominant candidate: {dominant:?}",
            query.kind()
        );
        let pair = reply
            .value
            .get("non_dominated_pair")
            .and_then(Json::as_arr)
            .expect("counterexample pair");
        let (j, k) = (pair[0].as_usize().unwrap(), pair[1].as_usize().unwrap());
        let regrets = reply.value.get("regrets").and_then(Json::as_arr).unwrap();
        let cell = |row: usize, col: usize| {
            regrets[row].as_arr().unwrap()[col]
                .as_str()
                .unwrap()
                .to_string()
        };
        assert_ne!(cell(j, k), "0", "pair member j must regret k's column");
        assert_ne!(cell(k, j), "0", "pair member k must regret j's column");
    }
    handle.shutdown();
}

#[test]
fn ldp_gap_is_positive_and_composition_multiplies_levels() {
    let handle = test_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    // The local model pays a strictly positive premium over the centralized
    // optimum, and re-asking hits the cache byte-identically.
    let first = client
        .zoo_ldp(
            LdpProtocol::RandomizedResponse,
            3,
            &rat(1, 4),
            &LossSpec::<Rational>::Absolute,
            CacheMode::Use,
        )
        .expect("ldp gap");
    let second = client
        .zoo_ldp(
            LdpProtocol::RandomizedResponse,
            3,
            &rat(1, 4),
            &LossSpec::<Rational>::Absolute,
            CacheMode::Use,
        )
        .expect("ldp gap again");
    assert_eq!(second.cache, CacheDisposition::Hit);
    assert_eq!(first.raw, second.raw);
    assert_eq!(
        first.value.get("central_loss").and_then(Json::as_str),
        Some("168/415")
    );
    let gap = first.value.get("gap").and_then(Json::as_str).unwrap();
    assert_ne!(gap, "0", "the local model must pay a positive premium");
    assert!(
        !gap.starts_with('-'),
        "the gap can never be negative: {gap}"
    );

    // Composition: α's multiply exactly (1/2 · 1/4 = 1/8).
    let agents = vec![
        ZooAgentSpec {
            name: "census".to_string(),
            users: 3,
            alpha: rat(1, 2),
            loss: LossSpec::Absolute,
        },
        ZooAgentSpec {
            name: "health".to_string(),
            users: 3,
            alpha: rat(1, 4),
            loss: LossSpec::Absolute,
        },
    ];
    let composed = client
        .zoo_compose(&agents, CacheMode::Use)
        .expect("compose");
    assert_eq!(
        composed.value.get("composed_alpha").and_then(Json::as_str),
        Some("1/8")
    );
    let reported = composed.value.get("agents").and_then(Json::as_arr).unwrap();
    assert_eq!(reported.len(), 2);
    assert_eq!(
        reported[0].get("name").and_then(Json::as_str),
        Some("census")
    );
    // The second agent is the paper's pinned instance (n = 3, α = 1/4).
    assert_eq!(
        reported[1].get("loss").and_then(Json::as_str),
        Some("168/415")
    );
    handle.shutdown();
}

// ----------------------------------------------------------------------
// Fleet tier
// ----------------------------------------------------------------------

/// A `privmech-serve` child process and the address it bound.
struct Shard {
    child: Child,
    addr: String,
}

impl Shard {
    fn spawn() -> Shard {
        let mut child = Command::new(env!("CARGO_BIN_EXE_privmech-serve"))
            .args(["--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn privmech-serve");
        let stdout = child.stdout.take().expect("child stdout is piped");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines.next().expect("shard banner").expect("read banner");
        let addr = banner
            .strip_prefix("privmech-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected shard banner: {banner}"))
            .to_string();
        std::thread::spawn(move || lines.for_each(drop));
        Shard { child, addr }
    }

    fn kill(&mut self) {
        self.child.kill().expect("kill shard");
        self.child.wait().expect("reap shard");
    }
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// One length-prefixed request/response exchange on `stream`.
fn rpc(stream: &TcpStream, body: &Json) -> Vec<u8> {
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    write_frame(&mut writer, json::to_string(body).as_bytes()).expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    read_frame(&mut reader)
        .expect("read")
        .expect("reply before EOF")
}

fn parse(reply: &[u8]) -> Json {
    json::parse(std::str::from_utf8(reply).expect("UTF-8 reply")).expect("JSON reply")
}

/// A v2 `zoo_table` body over the pinned panel; `d` varies the α so bodies
/// spread across the ring.
fn zoo_table_body(id: u64, d: i64, cache: &str) -> Json {
    Json::obj()
        .with("v", Json::num_u64(2))
        .with("id", Json::num_u64(id))
        .with("op", Json::str("zoo_table"))
        .with("cache", Json::str(cache))
        .with("query", query_to_wire(&QueryClass::Count { n: 3 }))
        .with("alpha", rat(1, d).to_wire())
        .with(
            "consumers",
            Json::Arr(
                panel::<Rational>(3)
                    .iter()
                    .map(ZooConsumerSpec::to_wire)
                    .collect(),
            ),
        )
}

/// A v2 `zoo_eval` LDP body.
fn zoo_ldp_body(id: u64, users: usize, cache: &str) -> Json {
    Json::obj()
        .with("v", Json::num_u64(2))
        .with("id", Json::num_u64(id))
        .with("op", Json::str("zoo_eval"))
        .with("cache", Json::str(cache))
        .with("scenario", Json::str("ldp"))
        .with("protocol", Json::str("randomized_response"))
        .with("users", Json::num_u64(users as u64))
        .with("alpha", rat(1, 4).to_wire())
        .with("loss", Json::str("absolute"))
}

#[test]
fn routed_zoo_replies_are_byte_identical_and_metrics_split_per_shard() {
    let shards = [Shard::spawn(), Shard::spawn()];
    let handle = router::spawn(RouterConfig::new(
        shards.iter().map(|s| s.addr.clone()).collect(),
    ))
    .expect("spawn router");
    let ring = ShardRing::with_default_vnodes(2);
    let routed = connect(&handle.addr().to_string());

    // Routed zoo replies are byte-identical to the owning shard's, and zoo
    // requests carry routing keys (they are never scattered arbitrarily).
    let mut bodies: Vec<Json> = (2..6)
        .enumerate()
        .map(|(id, d)| zoo_table_body(id as u64, d, "bypass"))
        .collect();
    bodies.push(zoo_ldp_body(50, 2, "bypass"));
    bodies.push(zoo_ldp_body(51, 3, "bypass"));
    for body in &bodies {
        let key = routing_key(body).expect("zoo requests have routing keys");
        let owner = ring.shard_for(&key);
        let via_router = rpc(&routed, body);
        let direct = rpc(&connect(&shards[owner].addr), body);
        assert_eq!(
            via_router, direct,
            "routed zoo reply diverged from the owning shard"
        );
        assert_eq!(
            parse(&via_router).get("ok").and_then(Json::as_bool),
            Some(true)
        );
    }

    // Routing is consistent: re-asking a cacheable spelling through the
    // router hits the same shard's warm cache.
    let first = rpc(&routed, &zoo_table_body(100, 4, "use"));
    let second = rpc(&routed, &zoo_table_body(101, 4, "use"));
    assert_eq!(
        parse(&second).get("cache").and_then(Json::as_str),
        Some("hit")
    );
    assert_eq!(
        parse(&first).get("result").map(json::to_string),
        parse(&second).get("result").map(json::to_string),
    );

    // The fleet `metrics` reply merges ops across shards *and* appends a
    // per-shard latency-skew section an operator can read from the one
    // endpoint.
    let metrics = parse(&rpc(
        &routed,
        &Json::obj()
            .with("v", Json::num_u64(2))
            .with("id", Json::num_u64(999))
            .with("op", Json::str("metrics")),
    ));
    let result = metrics.get("result").expect("metrics result");
    let merged = result.get("ops").expect("merged ops");
    let table_count = merged
        .get("zoo_table")
        .and_then(|o| o.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let eval_count = merged
        .get("zoo_eval")
        .and_then(|o| o.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(table_count >= 6 && eval_count >= 2, "fleet counters merge");
    let per_shard = result.get("shards").and_then(Json::as_arr).expect("shards");
    assert_eq!(per_shard.len(), 2, "one entry per live shard");
    let mut shard_total = 0;
    for (i, entry) in per_shard.iter().enumerate() {
        assert_eq!(entry.get("shard").and_then(Json::as_usize), Some(i));
        let ops = entry.get("ops").expect("per-shard ops");
        for op in ["zoo_table", "zoo_eval"] {
            let Some(stats) = ops.get(op) else { continue };
            let count = stats.get("count").and_then(Json::as_u64).unwrap();
            let total_ns = stats.get("total_ns").and_then(Json::as_u64).unwrap();
            let mean_ns = stats.get("mean_ns").and_then(Json::as_u64).unwrap();
            assert_eq!(mean_ns, total_ns / count, "mean is the integer mean");
            assert!(stats.get("p99_le_ns").and_then(Json::as_u64).is_some());
            if op == "zoo_table" {
                shard_total += count;
            }
        }
    }
    assert!(
        shard_total >= table_count,
        "per-shard zoo_table counts ({shard_total}) cover the merged count \
         ({table_count}; direct traffic may add more)"
    );

    handle.shutdown();
    for mut shard in shards {
        shard.kill();
    }
}
