//! Minimal Linux `epoll`/`eventfd` bindings for the readiness loop.
//!
//! The build environment is offline (no `mio`, no `libc` crate), so the two
//! syscall families the event loop needs are declared here directly — libc
//! itself is always linked by `std` on Linux. This is the only module in the
//! crate allowed to contain `unsafe`; everything above it speaks in terms of
//! the safe [`Poller`] / [`WakeFd`] wrappers and `std`'s nonblocking sockets.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::{AsRawFd, RawFd};

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x1;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x4;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const EPOLLERR: u32 = 0x8;
/// Peer hangup (`EPOLLHUP`) — always reported, never requested.
pub const EPOLLHUP: u32 = 0x10;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One `struct epoll_event`. Packed, as the kernel ABI demands on x86-64.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event mask (`EPOLLIN | …`).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// A level-triggered epoll instance. Registered fds carry a `u64` token that
/// comes back in each ready event.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Create the epoll instance.
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; the returned fd is owned
        // by the Poller and closed on drop.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `event` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Register `fd` under `token` with the given interest mask.
    pub fn register(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the interest mask of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Remove a registered fd.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` (−1 = forever) and fill `events` with ready
    /// fds; returns how many. A signal interruption reports zero events.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let max = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
        // SAFETY: `events` is valid for `max` entries; the kernel writes at
        // most that many.
        let ret = unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), max, timeout_ms) };
        match cvt(ret) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the fd is owned and closed exactly once.
        unsafe { close(self.epfd) };
    }
}

/// An `eventfd`-based wakeup: other threads [`signal`](WakeFd::signal) it to
/// pull the event loop out of `epoll_wait`; the loop
/// [`drain`](WakeFd::drain)s it when woken.
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Create the eventfd (nonblocking, so signal and drain never stall).
    pub fn new() -> io::Result<Self> {
        // SAFETY: eventfd takes no pointers; the fd is owned.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(WakeFd { fd })
    }

    /// Wake the loop. Saturation (`EAGAIN` on a counter already at max) is
    /// fine — the loop is guaranteed to wake either way.
    pub fn signal(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value.
        unsafe { write(self.fd, std::ptr::addr_of!(one).cast(), 8) };
    }

    /// Consume all pending wakeups.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reads 8 bytes into a live stack value; nonblocking, so it
        // returns EAGAIN once empty.
        unsafe { read(self.fd, std::ptr::addr_of_mut!(buf).cast(), 8) };
    }
}

impl AsRawFd for WakeFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: the fd is owned and closed exactly once.
        unsafe { close(self.fd) };
    }
}
