//! Hand-rolled per-operation latency histograms for the `metrics` op.
//!
//! Buckets are **fixed, log-spaced and disjoint**: bucket `k` counts only
//! the requests whose handling latency fell in `(1 µs · 2^(k-1), 1 µs · 2^k]`
//! (the last bucket is unbounded), so the full range from a cache hit (~µs)
//! to a multi-minute exact LP solve fits in [`BUCKET_COUNT`] counters with
//! constant-time recording and no allocation on the hot path. Everything is relaxed atomics — the snapshot
//! is a racing read, which is the right trade for observability counters.
//!
//! The wire rendering (see `PROTOCOL.md`, op `metrics`) reports, per
//! operation, the total count, the summed latency, and the non-empty buckets
//! as `{le_ns, count}` pairs (cumulative-free, i.e. plain per-bucket counts).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Number of latency buckets: 30 bounded buckets with upper bounds
/// `1 µs · 2^k` for `k` in `0..=29`, plus one unbounded overflow bucket.
/// The largest bounded bucket ends at 2^29 µs ≈ 9 minutes, comfortably past
/// the slowest exact solve worth serving.
pub const BUCKET_COUNT: usize = 31;

/// The operations the server tracks, in wire-name form. Recording an op
/// outside this list is a no-op (there is nothing useful to aggregate for
/// unparsable frames).
pub const TRACKED_OPS: &[&str] = &[
    "ping",
    "hello",
    "stats",
    "metrics",
    "solve",
    "sweep",
    "interact",
    "zoo_eval",
    "zoo_table",
    "shutdown",
];

/// One operation's latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }
}

/// Bucket `k` holds latencies in `(upper(k-1), upper(k)]` nanoseconds.
fn bucket_upper_ns(k: usize) -> u64 {
    1_000u64 << k
}

fn bucket_index(ns: u64) -> usize {
    // Smallest k with ns <= 1000 * 2^k; saturates into the overflow bucket.
    (0..BUCKET_COUNT - 1)
        .find(|&k| ns <= bucket_upper_ns(k))
        .unwrap_or(BUCKET_COUNT - 1)
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Render as a wire object: `{count, total_ns, buckets: [{le_ns, count}]}`
    /// with empty buckets omitted; the overflow bucket reports `le_ns: 0`
    /// (meaning "unbounded").
    #[must_use]
    pub fn to_wire(&self) -> Json {
        let mut buckets = Vec::new();
        for (k, bucket) in self.buckets.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let le_ns = if k == BUCKET_COUNT - 1 {
                0
            } else {
                bucket_upper_ns(k)
            };
            buckets.push(
                Json::obj()
                    .with("le_ns", Json::num_u64(le_ns))
                    .with("count", Json::num_u64(count)),
            );
        }
        Json::obj()
            .with("count", Json::num_u64(self.count()))
            .with(
                "total_ns",
                Json::num_u64(self.total_ns.load(Ordering::Relaxed)),
            )
            .with("buckets", Json::Arr(buckets))
    }

    /// Atomically-per-counter take the histogram's contents: render the same
    /// wire object as [`LatencyHistogram::to_wire`] while zeroing every
    /// counter via `swap(0)`. Concurrent recordings may straddle the reset
    /// (landing partly in each window) — the right trade for observability
    /// counters, same as the racing snapshot in `to_wire`.
    fn take_wire(&self) -> Json {
        let mut buckets = Vec::new();
        for (k, bucket) in self.buckets.iter().enumerate() {
            let count = bucket.swap(0, Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let le_ns = if k == BUCKET_COUNT - 1 {
                0
            } else {
                bucket_upper_ns(k)
            };
            buckets.push(
                Json::obj()
                    .with("le_ns", Json::num_u64(le_ns))
                    .with("count", Json::num_u64(count)),
            );
        }
        Json::obj()
            .with(
                "count",
                Json::num_u64(self.count.swap(0, Ordering::Relaxed)),
            )
            .with(
                "total_ns",
                Json::num_u64(self.total_ns.swap(0, Ordering::Relaxed)),
            )
            .with("buckets", Json::Arr(buckets))
    }
}

/// Per-operation latency histograms, indexed by [`TRACKED_OPS`].
#[derive(Debug)]
pub struct Metrics {
    histograms: Vec<LatencyHistogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            histograms: TRACKED_OPS
                .iter()
                .map(|_| LatencyHistogram::default())
                .collect(),
        }
    }

    /// Record one handled request. Unknown ops are ignored.
    pub fn record(&self, op: &str, ns: u64) {
        if let Some(idx) = TRACKED_OPS.iter().position(|&o| o == op) {
            self.histograms[idx].record(ns);
        }
    }

    /// The histogram of one tracked op (`None` for unknown names).
    #[must_use]
    pub fn histogram(&self, op: &str) -> Option<&LatencyHistogram> {
        TRACKED_OPS
            .iter()
            .position(|&o| o == op)
            .map(|idx| &self.histograms[idx])
    }

    /// Render the `metrics` op result: `{ops: {<op>: <histogram>, ...}}`,
    /// with never-recorded ops omitted.
    #[must_use]
    pub fn to_wire(&self) -> Json {
        let mut ops = Json::obj();
        for (op, histogram) in TRACKED_OPS.iter().zip(&self.histograms) {
            if histogram.count() == 0 {
                continue;
            }
            ops = ops.with(op, histogram.to_wire());
        }
        Json::obj().with("ops", ops)
    }

    /// Render the `metrics` op result exactly as [`Metrics::to_wire`] would,
    /// while zeroing every histogram — the `metrics` op's `reset: true` form.
    /// Recordings racing the reset may straddle the window boundary; callers
    /// wanting exact windows should quiesce traffic around the reset.
    #[must_use]
    pub fn snapshot_and_reset(&self) -> Json {
        let mut ops = Json::obj();
        for (op, histogram) in TRACKED_OPS.iter().zip(&self.histograms) {
            if histogram.count() == 0 {
                continue;
            }
            ops = ops.with(op, histogram.take_wire());
        }
        Json::obj().with("ops", ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn bucket_index_is_log_spaced_with_saturating_overflow() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1_000), 0);
        assert_eq!(bucket_index(1_001), 1);
        assert_eq!(bucket_index(2_000), 1);
        assert_eq!(bucket_index(1_000_000), 10); // 1 ms
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn records_aggregate_counts_and_totals() {
        let metrics = Metrics::new();
        metrics.record("solve", 1_500); // bucket 1
        metrics.record("solve", 1_500);
        metrics.record("solve", 3_000_000); // bucket 12
        metrics.record("nonsense", 1); // ignored
        let hist = metrics.histogram("solve").unwrap();
        assert_eq!(hist.count(), 3);

        let wire = metrics.to_wire();
        let solve = wire.get("ops").and_then(|o| o.get("solve")).unwrap();
        assert_eq!(solve.get("count").and_then(Json::as_u64), Some(3));
        assert_eq!(
            solve.get("total_ns").and_then(Json::as_u64),
            Some(1_500 + 1_500 + 3_000_000)
        );
        let buckets = solve.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 2, "two non-empty buckets");
        assert_eq!(buckets[0].get("le_ns").and_then(Json::as_u64), Some(2_000));
        assert_eq!(buckets[0].get("count").and_then(Json::as_u64), Some(2));
        // Never-recorded ops are omitted entirely.
        assert!(wire.get("ops").unwrap().get("ping").is_none());
        // The rendering is valid, deterministic JSON.
        let text = json::to_string(&wire);
        assert_eq!(json::to_string(&json::parse(&text).unwrap()), text);
    }

    #[test]
    fn snapshot_and_reset_returns_window_then_zeroes() {
        let metrics = Metrics::new();
        metrics.record("solve", 1_500);
        metrics.record("sweep", 900);
        // The reset snapshot is byte-identical to a plain snapshot of the
        // same window...
        let plain = json::to_string(&metrics.to_wire());
        let taken = metrics.snapshot_and_reset();
        assert_eq!(json::to_string(&taken), plain);
        // ...and afterwards the window is empty (all ops omitted).
        assert_eq!(json::to_string(&metrics.to_wire()), "{\"ops\":{}}");
        assert_eq!(metrics.histogram("solve").unwrap().count(), 0);
        // New recordings land in the fresh window.
        metrics.record("solve", 2_500);
        assert_eq!(metrics.histogram("solve").unwrap().count(), 1);
    }
}
