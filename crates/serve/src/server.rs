//! The serving loop: a pipelined, multi-threaded TCP request handler over
//! [`PrivacyEngine`] with sharded LRU response caches.
//!
//! # Connection anatomy (protocol v2)
//!
//! One **event-loop thread** owns every socket through an epoll-style
//! readiness loop (the `sys` module's epoll wrapper): sockets are
//! nonblocking, partial frames accumulate in a per-connection decoder (the
//! `readiness` module's `FrameReader`) until a complete frame appears, and
//! each decoded request is handed to a fixed, shared pool of **worker
//! threads** (the compute budget). Completed responses are queued on the
//! connection's **outbox** (`readiness::Outbox`) and pumped out as the socket turns
//! writable, so frames never interleave mid-frame and no thread ever parks
//! on a socket. Many requests from one connection can therefore be in flight
//! at once, and replies may complete — and be written — **out of order**;
//! clients match them by the request `id` they chose. v1 frames run through
//! the same machinery and still behave as strict request/response because a
//! v1 client only ever has one request in flight. A `v2` `sweep` streams:
//! one `sweep_item` frame per completed α (completion order, each carrying
//! its input `index`, via [`PrivacyEngine::sweep_with`]) and a terminal
//! `sweep_done` frame with aggregate statistics.
//!
//! Backpressure is **readiness gating**: at the per-connection in-flight cap
//! ([`ServerConfig::max_inflight_per_conn`]) the loop drops the connection's
//! read interest — the client's sends back up into the kernel's TCP receive
//! window — and restores it as terminal frames retire. A peer that stops
//! *reading* accumulates outbox bytes instead of wedging a worker on a
//! blocking write; past `readiness::MAX_OUTBOX_BYTES` the
//! connection is torn down.
//!
//! # Caching
//!
//! Every cacheable operation is keyed on the canonical request fingerprint
//! ([`ValidatedRequest::fingerprint`](privmech_core::ValidatedRequest::fingerprint))
//! composed with the operation and scalar tag, so a cached response is
//! byte-identical to what an uncached solve of the same request would render
//! — with [`ServerConfig::verify_hits`], the server re-solves on every hit
//! and *asserts* that identity at runtime. A v2 streaming sweep shares its
//! cache entry with the v1 monolithic form (the entry stores the monolithic
//! rendering; a streaming hit replays it item by item), so the two protocol
//! majors and both cache states render byte-identical `result` objects.
//! Deterministic **validation errors** are negatively cached under their own
//! counters (see `PROTOCOL.md` § Negative caching), and
//! [`ServerConfig::cache_file`] persists both caches across restarts as
//! JSON Lines ([`crate::persist`]) — portable precisely because of the
//! bit-identity contract.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use privmech_core::{Mechanism, PrivacyEngine, PrivacyLevel, RequestFingerprint};
use privmech_numerics::Rational;

use crate::cache::{CacheStats, ShardedCache};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::persist;
use crate::proto::{
    assemble_solves, is_validation_code, matrix_to_wire, mechanism_from_wire, render_interaction,
    render_solve, stats_from_wire, stats_to_wire, CacheDisposition, CacheMode, ConsumerSpec,
    WireError, WireScalar, PROTOCOL_V1, PROTOCOL_VERSION,
};
use crate::readiness::{FrameReader, Outbox};
use crate::sys::{EpollEvent, Poller, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};

/// Configuration of a serving instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads — the number of requests *computed* concurrently
    /// (connections are limited only by event-loop bookkeeping, not by this
    /// pool: an idle connection costs one epoll registration and two small
    /// buffers, no thread).
    pub worker_threads: usize,
    /// Total response-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Number of cache shards (lock granularity).
    pub cache_shards: usize,
    /// Negative-cache capacity in entries for deterministic validation
    /// errors (0 disables negative caching).
    pub neg_cache_capacity: usize,
    /// Re-solve on every cache hit (positive and negative) and assert the
    /// cached response is byte-identical to the fresh one. Turns each hit
    /// into a full solve — for correctness harnesses, not production
    /// throughput.
    pub verify_hits: bool,
    /// Worker-thread budget of the per-request engine for `sweep` operations
    /// (request-level parallelism comes from `worker_threads`).
    pub sweep_threads: usize,
    /// Persist both caches to this JSON Lines file: loaded on startup,
    /// dumped on shutdown, so a restarted server keeps its hot set (entries
    /// are portable by the bit-identity contract).
    pub cache_file: Option<PathBuf>,
    /// Per-connection bound on decoded requests in flight (queued for or
    /// executing on the worker pool). At the cap the event loop drops the
    /// connection's read interest — real backpressure through the kernel's
    /// TCP receive window — and restores it as terminal frames are written,
    /// so a client pipelining thousands of requests costs bounded server
    /// memory. 0 disables the bound.
    pub max_inflight_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: 4,
            cache_capacity: 4096,
            cache_shards: 8,
            neg_cache_capacity: 1024,
            verify_hits: false,
            sweep_threads: 1,
            cache_file: None,
            max_inflight_per_conn: 256,
        }
    }
}

/// The event loop's doorbell: worker threads push the token of a connection
/// whose outbox or in-flight count changed, then signal the eventfd to pull
/// the loop out of `epoll_wait`.
struct LoopNotify {
    wake: WakeFd,
    dirty: Mutex<Vec<u64>>,
}

impl LoopNotify {
    fn new() -> io::Result<Self> {
        Ok(LoopNotify {
            wake: WakeFd::new()?,
            dirty: Mutex::new(Vec::new()),
        })
    }

    fn push(&self, token: u64) {
        self.dirty
            .lock()
            .expect("dirty token list poisoned")
            .push(token);
        self.wake.signal();
    }

    fn take(&self) -> Vec<u64> {
        std::mem::take(&mut *self.dirty.lock().expect("dirty token list poisoned"))
    }
}

struct Shared {
    /// Rendered `result` objects by canonical request key. Storing bytes
    /// rather than trees keeps the hit path allocation-free up to the
    /// envelope: hits splice the `Arc<str>` into the response via
    /// [`Json::Raw`].
    cache: ShardedCache<Arc<str>>,
    /// Rendered `{code, message}` error objects for deterministic validation
    /// failures, with counters separate from `cache` so error hits don't
    /// pollute the solve hit rate.
    neg_cache: ShardedCache<Arc<str>>,
    /// Response-cache keys by *lexically canonical* request rendering. A
    /// compute request's cache key is derived from its validated
    /// fingerprint, which costs a full validation pass (loss-matrix
    /// construction included) on every arrival — even a cache hit. Identical
    /// canonical request bytes always validate to the identical fingerprint,
    /// so once a request has validated, repeats can map straight to the
    /// response-cache key and skip validation entirely. Misses here are
    /// conservative (a differently-spelled equivalent request falls through
    /// to full validation and lands on the same response key); entries are
    /// only written after a successful validation; the memo is bypassed
    /// under `verify_hits` so verification still re-validates everything.
    key_memo: ShardedCache<Arc<str>>,
    /// Per-op latency histograms (the `metrics` op).
    metrics: Metrics,
    verify_hits: bool,
    sweep_threads: usize,
    stop: AtomicBool,
    addr: SocketAddr,
    /// Wakes the event loop when workers finish writes or the server stops.
    notify: LoopNotify,
    cache_file: Option<PathBuf>,
    dumped: AtomicBool,
    /// Per-connection in-flight cap ([`ServerConfig::max_inflight_per_conn`];
    /// 0 = unbounded).
    max_inflight: usize,
    /// High-water mark of any single connection's in-flight depth since
    /// startup — reported by the `stats` op so load harnesses can see how
    /// close clients come to the backpressure cap.
    inflight_peak: AtomicU64,
}

impl Shared {
    /// Dump both caches to the configured cache file, once.
    fn dump_cache_file(&self) {
        if self.dumped.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(path) = &self.cache_file {
            if let Err(e) = persist::dump(path, &self.cache, &self.neg_cache) {
                eprintln!(
                    "privmech-serve: cache dump to {} failed: {e}",
                    path.display()
                );
            }
        }
    }
}

/// One connection's write half, shared by every worker completing one of its
/// requests. Workers never touch the socket: [`ConnWriter::send`] renders
/// the frame into the outbox under a mutex (whole frames, so frames never
/// interleave mid-frame; interleaving of frames *between* requests is what
/// the `id` tag is for) and rings the event loop's doorbell to flush it.
struct ConnWriter {
    outbox: Mutex<Outbox>,
    /// Set on the first unrecoverable failure (outbox overflow — the peer
    /// stopped reading — or a socket error seen by the event loop): later
    /// sends fail fast instead of queueing bytes that can never be
    /// delivered.
    dead: AtomicBool,
    /// This connection's requests decoded but not yet answered with a
    /// terminal frame. The event loop gates read interest at the configured
    /// cap; workers decrement in [`run_job`] after the terminal write.
    inflight: AtomicUsize,
    /// The connection's event-loop token, for doorbell pushes.
    token: u64,
    notify: Arc<Shared>,
}

impl ConnWriter {
    /// Whether the connection is unrecoverable.
    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Return an in-flight slot (the request's terminal frame is written).
    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        self.notify.notify.push(self.token);
    }

    fn send(&self, frame: &Json) -> io::Result<()> {
        if self.is_dead() {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection writer is dead",
            ));
        }
        let bytes = json::to_string(frame);
        let result = self
            .outbox
            .lock()
            .expect("connection outbox poisoned")
            .push_frame(bytes.as_bytes());
        if result.is_err() {
            self.dead.store(true, Ordering::Relaxed);
        }
        self.notify.notify.push(self.token);
        result
    }
}

/// One decoded request frame queued for the worker pool.
struct Job {
    writer: Arc<ConnWriter>,
    payload: Vec<u8>,
}

/// A running server. Dropping the handle shuts the server down and joins its
/// threads.
pub struct ServerHandle {
    shared: Arc<Shared>,
    event: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Current response-cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Current negative-cache (validation-error) counters.
    #[must_use]
    pub fn neg_cache_stats(&self) -> CacheStats {
        self.shared.neg_cache.stats()
    }

    /// Signal the event loop to stop and join every thread. Also invoked on
    /// drop; calling it explicitly surfaces the join.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until the server stops (e.g. a client sent the `shutdown` op),
    /// then join every thread and persist the cache file if configured.
    pub fn join(mut self) {
        self.join_threads();
        self.shared.dump_cache_file();
    }

    fn join_threads(&mut self) {
        if let Some(event) = self.event.take() {
            let _ = event.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn stop_and_join(&mut self) {
        signal_stop(&self.shared);
        self.join_threads();
        self.shared.dump_cache_file();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn signal_stop(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    shared.notify.wake.signal();
}

/// Bind and start serving; returns immediately with a handle. If a cache
/// file is configured and present, both caches are pre-loaded from it.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener =
        TcpListener::bind(
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address")
            })?,
        )?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
        neg_cache: ShardedCache::new(config.neg_cache_capacity, config.cache_shards),
        key_memo: ShardedCache::new(config.cache_capacity, config.cache_shards),
        metrics: Metrics::new(),
        verify_hits: config.verify_hits,
        sweep_threads: config.sweep_threads.max(1),
        stop: AtomicBool::new(false),
        addr,
        notify: LoopNotify::new()?,
        cache_file: config.cache_file.clone(),
        dumped: AtomicBool::new(false),
        max_inflight: config.max_inflight_per_conn,
        inflight_peak: AtomicU64::new(0),
    });
    if let Some(path) = &shared.cache_file {
        match persist::load(path, &shared.cache, &shared.neg_cache) {
            Ok(report) if report.results + report.errors > 0 => eprintln!(
                "privmech-serve: loaded {} result + {} error cache entries from {}",
                report.results,
                report.errors,
                path.display()
            ),
            Ok(_) => {}
            Err(e) => eprintln!(
                "privmech-serve: cache load from {} failed: {e}",
                path.display()
            ),
        }
    }

    let (jobs_tx, jobs_rx): (Sender<Job>, Receiver<Job>) = std::sync::mpsc::channel();
    let jobs_rx = Arc::new(Mutex::new(jobs_rx));
    let workers: Vec<JoinHandle<()>> = (0..config.worker_threads.max(1))
        .map(|_| {
            let jobs_rx = Arc::clone(&jobs_rx);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || loop {
                let job = {
                    let guard = jobs_rx.lock().expect("job queue poisoned");
                    guard.recv()
                };
                match job {
                    Ok(job) => {
                        if run_job(&shared, &job) {
                            signal_stop(&shared);
                        }
                    }
                    Err(_) => break, // the event loop is gone
                }
            })
        })
        .collect();

    // Register the listener and doorbell before the loop thread starts so
    // setup failures surface here, not in a detached thread.
    let poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
    poller.register(shared.notify.wake.as_raw_fd(), TOKEN_WAKE, EPOLLIN)?;

    let event = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            EventLoop {
                shared,
                poller,
                listener,
                conns: HashMap::new(),
                jobs_tx,
                next_token: FIRST_CONN_TOKEN,
                scratch: vec![0u8; 64 * 1024],
            }
            .run();
        })
    };

    Ok(ServerHandle {
        shared,
        event: Some(event),
        workers,
    })
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How long a stopping server keeps flushing outboxes and waiting for
/// in-flight requests before force-closing what remains.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// One live connection's event-loop state. The per-connection frame state
/// machine lives in `reader` (partial frames accumulate across readiness
/// events) and `writer` (partially written frames drain across writability
/// events).
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    writer: Arc<ConnWriter>,
    /// The interest mask currently registered with the poller.
    interest: u32,
    /// Peer EOF seen (or reads retired by a server stop): buffered frames
    /// still dispatch, but no more bytes arrive.
    read_closed: bool,
    /// Unrecoverable framing state: stop decoding, flush the outbox, close.
    closing: bool,
}

impl Conn {
    fn quiesced(&self) -> bool {
        self.writer.inflight.load(Ordering::SeqCst) == 0
            && self
                .writer
                .outbox
                .lock()
                .expect("connection outbox poisoned")
                .is_empty()
    }
}

/// The readiness loop: owns the listener, the poller and every connection.
struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    jobs_tx: Sender<Job>,
    next_token: u64,
    scratch: Vec<u8>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; 64];
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        loop {
            let timeout = if draining { 20 } else { 500 };
            let Ok(n) = self.poller.wait(&mut events, timeout) else {
                break;
            };
            for event in &events[..n] {
                let token = event.data;
                let mask = event.events;
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.shared.notify.wake.drain(),
                    token => self.conn_ready(token, mask),
                }
            }
            for token in self.shared.notify.take() {
                self.service(token);
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                if !draining {
                    draining = true;
                    drain_deadline = Instant::now() + DRAIN_GRACE;
                    let _ = self.poller.deregister(self.listener.as_raw_fd());
                    // Stop decoding new requests everywhere; in-flight ones
                    // finish and their terminal frames flush below.
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for token in tokens {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.read_closed = true;
                            conn.closing = true;
                        }
                        self.service(token);
                    }
                }
                let quiesced = self.conns.values().all(Conn::quiesced);
                if quiesced || Instant::now() >= drain_deadline {
                    break;
                }
            }
        }
        for (_, conn) in self.conns.drain() {
            conn.writer.dead.store(true, Ordering::Relaxed);
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        // Dropping `jobs_tx` (with `self`) lets the worker pool drain out.
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.stop.load(Ordering::SeqCst) {
                        continue; // drop it; the loop is about to drain
                    }
                    // Pipelined responses are many small back-to-back
                    // frames; leaving Nagle on would stall every frame after
                    // the first behind a delayed ACK whenever the client
                    // isn't writing.
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, EPOLLIN)
                        .is_err()
                    {
                        continue;
                    }
                    let writer = Arc::new(ConnWriter {
                        outbox: Mutex::new(Outbox::new()),
                        dead: AtomicBool::new(false),
                        inflight: AtomicUsize::new(0),
                        token,
                        notify: Arc::clone(&self.shared),
                    });
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            reader: FrameReader::new(),
                            writer,
                            interest: EPOLLIN,
                            read_closed: false,
                            closing: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// A readiness event on a connection: pull bytes in if readable, then
    /// run the shared service pass (decode, dispatch, flush, re-gate).
    fn conn_ready(&mut self, token: u64, mask: u32) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.teardown(token);
            return;
        }
        if mask & EPOLLIN != 0 && !conn.read_closed {
            match conn.reader.fill(&mut &conn.stream, &mut self.scratch) {
                Ok(eof) => conn.read_closed |= eof,
                Err(_) => {
                    self.teardown(token);
                    return;
                }
            }
        }
        self.service(token);
    }

    /// The per-connection state machine advance: dispatch decodable frames
    /// (gated by the in-flight cap), flush the outbox, update poller
    /// interest, and tear the connection down once it is finished.
    fn service(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.writer.is_dead() {
            self.teardown(token);
            return;
        }
        if !conn.closing {
            dispatch_frames(conn, &self.shared, &self.jobs_tx);
        }
        let flushed = {
            let mut outbox = conn
                .writer
                .outbox
                .lock()
                .expect("connection outbox poisoned");
            match outbox.pump(&mut &conn.stream) {
                Ok(emptied) => emptied,
                Err(_) => {
                    drop(outbox);
                    self.teardown(token);
                    return;
                }
            }
        };
        let at_cap = self.shared.max_inflight != 0
            && conn.writer.inflight.load(Ordering::SeqCst) >= self.shared.max_inflight;
        let readable = !conn.read_closed && !conn.closing && !at_cap;
        let desired = if readable { EPOLLIN } else { 0 } | if flushed { 0 } else { EPOLLOUT };
        if desired != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_ok()
        {
            conn.interest = desired;
        }
        if (conn.closing || conn.read_closed) && flushed && conn.quiesced() {
            self.teardown(token);
        }
    }

    fn teardown(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            conn.writer.dead.store(true, Ordering::Relaxed);
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

/// Decode and dispatch every complete buffered frame, stopping at the
/// in-flight cap (readiness gating: the caller then drops read interest, so
/// the client's sends back up into TCP flow control instead of server
/// memory).
fn dispatch_frames(conn: &mut Conn, shared: &Arc<Shared>, jobs_tx: &Sender<Job>) {
    loop {
        if shared.max_inflight != 0
            && conn.writer.inflight.load(Ordering::SeqCst) >= shared.max_inflight
        {
            return;
        }
        match conn.reader.next_frame() {
            Ok(Some(payload)) => {
                let depth = conn.writer.inflight.fetch_add(1, Ordering::SeqCst) + 1;
                shared
                    .inflight_peak
                    .fetch_max(depth as u64, Ordering::Relaxed);
                let job = Job {
                    writer: Arc::clone(&conn.writer),
                    payload,
                };
                // A send can only fail if every worker died; close then.
                if jobs_tx.send(job).is_err() {
                    conn.closing = true;
                    return;
                }
            }
            Ok(None) => {
                if conn.read_closed && conn.reader.has_partial() {
                    // EOF mid-frame: framing is unrecoverable. Report if the
                    // pipe still works, then close once everything flushes.
                    let _ = conn.writer.send(&error_response(
                        PROTOCOL_VERSION,
                        Json::Null,
                        wire_error_json(&WireError::new("malformed_frame", "unreadable frame")),
                        None,
                    ));
                    conn.closing = true;
                }
                return;
            }
            Err(_) => {
                // Oversized frame: report if the pipe still works, then drop
                // the connection (framing is unrecoverable).
                let _ = conn.writer.send(&error_response(
                    PROTOCOL_VERSION,
                    Json::Null,
                    wire_error_json(&WireError::new("malformed_frame", "unreadable frame")),
                    None,
                ));
                conn.closing = true;
                return;
            }
        }
    }
}

/// Handle one queued request on a worker thread; returns whether the server
/// should stop afterwards.
fn run_job(shared: &Arc<Shared>, job: &Job) -> bool {
    // A request whose connection writer is already dead (outbox overflow, or
    // a socket error seen by the event loop) can never deliver a byte: skip
    // the compute instead of burning a worker on it.
    if job.writer.is_dead() {
        job.writer.release();
        return false;
    }
    let start = Instant::now();
    // A panicking handler (a solver bug, a pathological input that slipped
    // past validation) must cost one response, not the worker thread.
    // Handlers never hold cache or writer locks across compute, so unwinding
    // here cannot poison shared state.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_payload(shared, &job.writer, &job.payload)
    }));
    let (op, terminal, stop) = outcome.unwrap_or_else(|_| {
        // Recover the request's v and id from the payload (parsing cannot
        // panic) so a pipelined client can correlate the failure with its
        // ticket instead of mistaking it for a connection-level error.
        let (v, id) = std::str::from_utf8(&job.payload)
            .ok()
            .and_then(|text| json::parse(text).ok())
            .map(|request| {
                let v = match request.get("v").and_then(Json::as_u64) {
                    Some(v @ (PROTOCOL_V1 | PROTOCOL_VERSION)) => v,
                    _ => PROTOCOL_VERSION,
                };
                (v, request.get("id").cloned().unwrap_or(Json::Null))
            })
            .unwrap_or((PROTOCOL_VERSION, Json::Null));
        let frame = error_response(
            v,
            id,
            wire_error_json(&WireError::new("internal", "request handler panicked")),
            None,
        );
        (None, frame, false)
    });
    // Record the latency *before* the terminal write: a client that has read
    // this request's terminal frame must observe its sample in any later
    // `metrics` reply, no matter which worker answers it.
    if let Some(op) = op {
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared.metrics.record(op, ns);
    }
    let _ = job.writer.send(&terminal);
    job.writer.release();
    stop
}

pub(crate) fn ok_response(v: u64, id: Json, cache: Option<CacheDisposition>, result: Json) -> Json {
    let mut obj = Json::obj()
        .with("v", Json::num_u64(v))
        .with("id", id)
        .with("ok", Json::Bool(true));
    if let Some(disposition) = cache {
        obj = obj.with("cache", Json::str(disposition.as_wire()));
    }
    obj.with("result", result)
}

/// Render a [`WireError`] as the response's `error` object — also the exact
/// form stored in the negative cache, so negative hits splice byte-identical
/// bytes.
pub(crate) fn wire_error_json(error: &WireError) -> Json {
    Json::obj()
        .with("code", Json::str(error.code))
        .with("message", Json::str(error.message.clone()))
}

pub(crate) fn error_response(
    v: u64,
    id: Json,
    error: Json,
    cache: Option<CacheDisposition>,
) -> Json {
    let mut obj = Json::obj()
        .with("v", Json::num_u64(v))
        .with("id", id)
        .with("ok", Json::Bool(false));
    if let Some(disposition) = cache {
        obj = obj.with("cache", Json::str(disposition.as_wire()));
    }
    obj.with("error", error)
}

/// A `sweep_item` stream frame: one completed α, tagged with its input index.
fn sweep_item_frame(v: u64, id: &Json, index: usize, result: Json) -> Json {
    Json::obj()
        .with("v", Json::num_u64(v))
        .with("id", id.clone())
        .with("ok", Json::Bool(true))
        .with("stream", Json::str("sweep_item"))
        .with("index", Json::num_u64(index as u64))
        .with("result", result)
}

/// The terminal `sweep_done` stream frame with aggregate statistics.
fn sweep_done_frame(v: u64, id: &Json, cache: CacheDisposition, result: Json) -> Json {
    Json::obj()
        .with("v", Json::num_u64(v))
        .with("id", id.clone())
        .with("ok", Json::Bool(true))
        .with("stream", Json::str("sweep_done"))
        .with("cache", Json::str(cache.as_wire()))
        .with("result", result)
}

/// A computation failure plus its (negative-)cache disposition.
struct ComputeError {
    /// Rendered or tree-form `{code, message}` object.
    error: Json,
    cache: Option<CacheDisposition>,
}

impl From<WireError> for ComputeError {
    fn from(e: WireError) -> Self {
        ComputeError {
            error: wire_error_json(&e),
            cache: None,
        }
    }
}

/// Handle one raw frame payload, writing any *non-terminal* frames it
/// produces (v2 `sweep_item`s); returns the op name (for metrics), the
/// **terminal** response frame — written by the caller *after* recording
/// metrics, so a client that has seen a request's terminal frame is
/// guaranteed to observe its latency in a subsequent `metrics` call — and
/// whether the server should stop.
fn handle_payload(
    shared: &Arc<Shared>,
    writer: &Arc<ConnWriter>,
    payload: &[u8],
) -> (Option<&'static str>, Json, bool) {
    let Ok(text) = std::str::from_utf8(payload) else {
        let frame = error_response(
            PROTOCOL_VERSION,
            Json::Null,
            wire_error_json(&WireError::new("malformed_json", "frame is not UTF-8")),
            None,
        );
        return (None, frame, false);
    };
    let request = match json::parse(text) {
        Ok(value) => value,
        Err(e) => {
            let frame = error_response(
                PROTOCOL_VERSION,
                Json::Null,
                wire_error_json(&WireError::new("malformed_json", e.to_string())),
                None,
            );
            return (None, frame, false);
        }
    };
    let id = request.get("id").cloned().unwrap_or(Json::Null);
    let v = match request.get("v").and_then(Json::as_u64) {
        Some(v @ (PROTOCOL_V1 | PROTOCOL_VERSION)) => v,
        got => {
            let message = match got {
                Some(v) => format!(
                    "server speaks protocol v{PROTOCOL_V1} and v{PROTOCOL_VERSION}, request is v{v}"
                ),
                None => {
                    format!("request needs an integer \"v\" ({PROTOCOL_V1} or {PROTOCOL_VERSION})")
                }
            };
            let frame = error_response(
                PROTOCOL_VERSION,
                id,
                wire_error_json(&WireError::new("unsupported_version", message)),
                None,
            );
            return (None, frame, false);
        }
    };
    if v == PROTOCOL_VERSION && id == Json::Null {
        // v2 replies are matched by id, and many may be in flight — an
        // untagged v2 request could never be correlated.
        let frame = error_response(
            v,
            Json::Null,
            wire_error_json(&WireError::bad_request(
                "v2 requests must carry a client-chosen \"id\"",
            )),
            None,
        );
        return (None, frame, false);
    }
    let op = request.get("op").and_then(Json::as_str).unwrap_or("");
    match op {
        "ping" => (
            Some("ping"),
            ok_response(v, id, None, Json::obj().with("pong", Json::Bool(true))),
            false,
        ),
        "hello" => {
            // The negotiation op: clients discover the freshest major the
            // server speaks. Pre-v2 servers answer `unknown_op`, which is the
            // negotiated fall-back-to-v1 signal.
            let result = Json::obj()
                .with("server", Json::str("privmech-serve"))
                .with(
                    "versions",
                    Json::Arr(vec![
                        Json::num_u64(PROTOCOL_V1),
                        Json::num_u64(PROTOCOL_VERSION),
                    ]),
                )
                .with("max", Json::num_u64(PROTOCOL_VERSION));
            (Some("hello"), ok_response(v, id, None, result), false)
        }
        "stats" => {
            let stats = shared.cache.stats();
            let neg = shared.neg_cache.stats();
            let result = Json::obj()
                .with("hits", Json::num_u64(stats.hits))
                .with("misses", Json::num_u64(stats.misses))
                .with("evictions", Json::num_u64(stats.evictions))
                .with("entries", Json::num_u64(stats.entries as u64))
                .with("capacity", Json::num_u64(stats.capacity as u64))
                .with("shards", Json::num_u64(stats.shards as u64))
                .with("neg_hits", Json::num_u64(neg.hits))
                .with("neg_misses", Json::num_u64(neg.misses))
                .with("neg_evictions", Json::num_u64(neg.evictions))
                .with("neg_entries", Json::num_u64(neg.entries as u64))
                .with("neg_capacity", Json::num_u64(neg.capacity as u64))
                .with("max_inflight", Json::num_u64(shared.max_inflight as u64))
                .with(
                    "inflight_peak",
                    Json::num_u64(shared.inflight_peak.load(Ordering::Relaxed)),
                );
            (Some("stats"), ok_response(v, id, None, result), false)
        }
        "metrics" => {
            // `reset: true` returns the snapshot and zeroes the histograms
            // in one op, giving back-to-back load runs clean measurement
            // windows (see PROTOCOL.md § metrics).
            let result = if request.get("reset").and_then(Json::as_bool) == Some(true) {
                shared.metrics.snapshot_and_reset()
            } else {
                shared.metrics.to_wire()
            };
            (Some("metrics"), ok_response(v, id, None, result), false)
        }
        "shutdown" => (
            Some("shutdown"),
            ok_response(v, id, None, Json::obj().with("stopping", Json::Bool(true))),
            true,
        ),
        "solve" | "sweep" | "interact" => {
            let op_name: &'static str = match op {
                "solve" => "solve",
                "sweep" => "sweep",
                _ => "interact",
            };
            let outcome = match request.get("scalar").and_then(Json::as_str) {
                Some("rational") | None => {
                    handle_compute::<Rational>(shared, writer, op_name, v, &id, &request)
                }
                Some("f64") => handle_compute::<f64>(shared, writer, op_name, v, &id, &request),
                Some(other) => Err(ComputeError::from(WireError::new(
                    "unsupported_scalar",
                    format!("unknown scalar backend \"{other}\""),
                ))),
            };
            let terminal = match outcome {
                Ok(frame) => frame,
                Err(e) => error_response(v, id, e.error, e.cache),
            };
            (Some(op_name), terminal, false)
        }
        "zoo_eval" | "zoo_table" => {
            let op_name: &'static str = if op == "zoo_eval" {
                "zoo_eval"
            } else {
                "zoo_table"
            };
            let outcome = match request.get("scalar").and_then(Json::as_str) {
                Some("rational") | None => {
                    handle_zoo::<Rational>(shared, op_name, v, &id, &request)
                }
                Some("f64") => handle_zoo::<f64>(shared, op_name, v, &id, &request),
                Some(other) => Err(ComputeError::from(WireError::new(
                    "unsupported_scalar",
                    format!("unknown scalar backend \"{other}\""),
                ))),
            };
            let terminal = match outcome {
                Ok(frame) => frame,
                Err(e) => error_response(v, id, e.error, e.cache),
            };
            (Some(op_name), terminal, false)
        }
        "" => (
            None,
            error_response(
                v,
                id,
                wire_error_json(&WireError::bad_request("request needs an \"op\"")),
                None,
            ),
            false,
        ),
        other => (
            None,
            error_response(
                v,
                id,
                wire_error_json(&WireError::new(
                    "unknown_op",
                    format!("unknown op \"{other}\""),
                )),
                None,
            ),
            false,
        ),
    }
}

/// Answer from the cache or compute; `Bypass` computes without touching the
/// cache. With `verify_hits`, every hit re-computes and asserts byte
/// identity against the cached rendering.
///
/// `compute` returns the **rendered** result object (see
/// [`render_solve`] / [`render_interaction`] and the zoo renderers): the
/// same string becomes the cache entry and the bytes spliced into the wire
/// envelope, so a result — whose dominant cost on large requests used to be
/// building and walking the `(n+1)²`-node mechanism tree — is rendered
/// exactly once per miss and zero times per hit.
fn serve_cached(
    shared: &Shared,
    key: &str,
    mode: CacheMode,
    compute: impl FnOnce() -> Result<String, WireError>,
) -> Result<(Json, CacheDisposition), WireError> {
    if mode == CacheMode::Bypass {
        return Ok((Json::Raw(compute()?.into()), CacheDisposition::Bypass));
    }
    if let Some(cached) = shared.cache.get(key) {
        if shared.verify_hits {
            let fresh = compute()?;
            if fresh != *cached {
                return Err(WireError::new(
                    "cache_verify_failed",
                    "cached response is not byte-identical to a fresh solve",
                ));
            }
        }
        return Ok((Json::Raw(cached), CacheDisposition::Hit));
    }
    let rendered: Arc<str> = compute()?.into();
    shared.cache.insert(key, Arc::clone(&rendered));
    Ok((Json::Raw(rendered), CacheDisposition::Miss))
}

/// Run the validation stage of a compute op through the negative cache:
/// deterministic validation failures (stable `CoreError`-mapped codes, see
/// [`is_validation_code`]) are cached under `neg_key` and replayed
/// byte-identically on repeats — with `verify_hits`, re-validated first.
fn validate_negatively_cached<X>(
    shared: &Shared,
    mode: CacheMode,
    neg_key: &str,
    validate: impl FnOnce() -> Result<X, WireError>,
) -> Result<X, ComputeError> {
    if mode == CacheMode::Bypass {
        return validate().map_err(ComputeError::from);
    }
    if let Some(cached) = shared.neg_cache.get(neg_key) {
        if shared.verify_hits {
            let fresh = match validate() {
                Err(e) => json::to_string(&wire_error_json(&e)),
                Ok(_) => String::new(), // a now-valid request can never match
            };
            if fresh != *cached {
                return Err(ComputeError::from(WireError::new(
                    "cache_verify_failed",
                    "cached validation error is not identical to fresh validation",
                )));
            }
        }
        return Err(ComputeError {
            error: Json::Raw(cached),
            cache: Some(CacheDisposition::Hit),
        });
    }
    match validate() {
        Ok(x) => Ok(x),
        Err(e) if is_validation_code(e.code) => {
            let rendered: Arc<str> = json::to_string(&wire_error_json(&e)).into();
            shared.neg_cache.insert(neg_key, Arc::clone(&rendered));
            Err(ComputeError {
                error: Json::Raw(rendered),
                cache: Some(CacheDisposition::Miss),
            })
        }
        Err(e) => Err(ComputeError::from(e)),
    }
}

/// The negative-cache key of a request: the *typed* spec re-encoded
/// canonically (so field order and lexical noise in the consumer fields
/// don't split entries), composed with the op, scalar tag and the
/// op-specific payload. The payload (`extra`) may be lexical — e.g. a sweep's
/// raw `alphas` array, which might be the very thing that failed to parse —
/// so differently-spelled equivalent payloads can split entries: a
/// conservative split, never a wrong hit (see `PROTOCOL.md` § Negative
/// caching).
fn neg_key<T: WireScalar>(op: &str, spec: &ConsumerSpec<T>, extra: &str) -> String {
    let spec_canonical = json::to_string(&spec.encode_onto(Json::obj()));
    neg_key_from(op, T::TAG, &spec_canonical, extra)
}

/// [`neg_key`] from an already-rendered canonical spec (the hot compute
/// paths render it once and share it between the negative-cache key and the
/// key-memo key).
fn neg_key_from(op: &str, tag: &str, spec_canonical: &str, extra: &str) -> String {
    format!("neg|{op}|{tag}|{spec_canonical}|{extra}")
}

/// The key-memo key of a compute request (see [`Shared::key_memo`]): op,
/// scalar tag, the canonically re-encoded spec, and the op-specific payload
/// rendering. Everything that feeds validation is covered, so equal memo
/// keys imply equal validated fingerprints.
fn memo_key(op: &str, tag: &str, spec_canonical: &str, extra: &str) -> String {
    format!("key|{op}|{tag}|{spec_canonical}|{extra}")
}

/// One compute op, returning its **terminal** frame (non-terminal v2
/// `sweep_item` frames are written through `writer` as they complete).
fn handle_compute<T: WireScalar>(
    shared: &Shared,
    writer: &Arc<ConnWriter>,
    op: &'static str,
    v: u64,
    id: &Json,
    request: &Json,
) -> Result<Json, ComputeError> {
    let mode = CacheMode::from_wire(request).map_err(ComputeError::from)?;
    let spec = ConsumerSpec::<T>::from_wire(request).map_err(ComputeError::from)?;
    match op {
        "solve" => {
            let alpha = scalar_field::<T>(request, "alpha").map_err(ComputeError::from)?;
            let spec_canonical = json::to_string(&spec.encode_onto(Json::obj()));
            let alpha_canonical = json::to_string(&alpha.to_wire());
            let memo_key = memo_key(op, T::TAG, &spec_canonical, &alpha_canonical);
            if mode == CacheMode::Use && !shared.verify_hits {
                // Fast hit path: a memoized key proves this exact canonical
                // request validated before, so repeats skip straight to the
                // cached rendering — no loss construction, no fingerprint.
                // Routed through `serve_cached` so each request still counts
                // exactly one response-cache lookup, and an evicted (or
                // still-computing) entry re-validates and re-solves inline.
                if let Some(key) = shared.key_memo.get(&memo_key) {
                    let (result, cache) = serve_cached(shared, &key, mode, || {
                        let validated = spec.to_request(alpha.clone())?;
                        let solve = PrivacyEngine::with_threads(1)
                            .solve(&validated)
                            .map_err(WireError::from)?;
                        Ok(render_solve(&solve))
                    })
                    .map_err(ComputeError::from)?;
                    return Ok(ok_response(v, id.clone(), Some(cache), result));
                }
            }
            let neg_key = neg_key_from(op, T::TAG, &spec_canonical, &alpha_canonical);
            let validated = validate_negatively_cached(shared, mode, &neg_key, || {
                spec.to_request(alpha.clone())
            })?;
            let key = format!("solve|{}|{}", T::TAG, validated.fingerprint().canonical());
            if mode == CacheMode::Use {
                shared.key_memo.insert(&memo_key, key.as_str().into());
            }
            let (result, cache) = serve_cached(shared, &key, mode, || {
                let solve = PrivacyEngine::with_threads(1)
                    .solve(&validated)
                    .map_err(WireError::from)?;
                Ok(render_solve(&solve))
            })
            .map_err(ComputeError::from)?;
            Ok(ok_response(v, id.clone(), Some(cache), result))
        }
        "sweep" => handle_sweep::<T>(shared, writer, v, id, request, mode, &spec),
        "interact" => {
            let mechanism: Mechanism<T> = {
                let wire_mech = request
                    .get("mechanism")
                    .ok_or_else(|| WireError::bad_request("interact needs a \"mechanism\""))
                    .map_err(ComputeError::from)?;
                let neg_key = neg_key(op, &spec, &json::to_string(wire_mech));
                validate_negatively_cached(shared, mode, &neg_key, || {
                    let mechanism: Mechanism<T> = mechanism_from_wire(wire_mech)?;
                    if mechanism.n() != spec.n {
                        // Deliberately *not* negative-cached: bad_request is a
                        // schema-level code, outside `is_validation_code`.
                        return Err(WireError::bad_request(format!(
                            "mechanism is for n = {}, request says n = {}",
                            mechanism.n(),
                            spec.n
                        )));
                    }
                    Ok(mechanism)
                })?
            };
            // The privacy level plays no role in post-processing (the
            // deployed mechanism already embodies it) and the strategy is
            // not consulted; both are normalized out of the cache key.
            let spec = spec.clone().with_strategy(Default::default());
            let neg_key = neg_key(op, &spec, "consumer");
            let validated =
                validate_negatively_cached(shared, mode, &neg_key, || spec.to_request(T::zero()))?;
            let mech_key = json::to_string(&matrix_to_wire(mechanism.matrix()));
            let key = format!(
                "interact|{}|{}|mech={mech_key}",
                T::TAG,
                validated.fingerprint().canonical()
            );
            let (result, cache) = serve_cached(shared, &key, mode, move || {
                let interaction = PrivacyEngine::with_threads(1)
                    .interact(&mechanism, &validated)
                    .map_err(WireError::from)?;
                Ok(render_interaction(&interaction))
            })
            .map_err(ComputeError::from)?;
            Ok(ok_response(v, id.clone(), Some(cache), result))
        }
        _ => unreachable!("dispatch covers every compute op"),
    }
}

/// One zoo op (`zoo_table` or `zoo_eval`; see [`crate::zoo`]): decode,
/// validate through the negative cache, evaluate through the response cache.
/// The cache key is the scenario's canonical form wrapped in a
/// [`RequestFingerprint`], so zoo entries are keyed (and consistent-hash
/// routed) exactly the way solves are, and every spelling of a scenario
/// shares one entry.
fn handle_zoo<T: WireScalar>(
    shared: &Shared,
    op: &'static str,
    v: u64,
    id: &Json,
    request: &Json,
) -> Result<Json, ComputeError> {
    let mode = CacheMode::from_wire(request).map_err(ComputeError::from)?;
    let parsed = crate::zoo::ZooRequest::<T>::from_wire(op, request).map_err(ComputeError::from)?;
    let canonical = parsed.canonical();
    let neg_key = neg_key_from(op, T::TAG, &canonical, "-");
    let validated = validate_negatively_cached(shared, mode, &neg_key, || parsed.validate())?;
    let key = format!(
        "{op}|{}|{}",
        T::TAG,
        RequestFingerprint::from_canonical(format!("zoo-v1;{canonical}")).canonical()
    );
    let (result, cache) = serve_cached(shared, &key, mode, move || validated.evaluate())
        .map_err(ComputeError::from)?;
    Ok(ok_response(v, id.clone(), Some(cache), result))
}

/// The `sweep` op, in both protocol shapes: a monolithic v1 reply, or a v2
/// stream of `sweep_item` frames (completion order, via
/// [`PrivacyEngine::sweep_with`]) closed by `sweep_done`. Both shapes share
/// one cache entry — the monolithic rendering — so v1 ≡ v2 ≡ cached ≡
/// uncached, byte for byte, per solve.
fn handle_sweep<T: WireScalar>(
    shared: &Shared,
    writer: &Arc<ConnWriter>,
    v: u64,
    id: &Json,
    request: &Json,
    mode: CacheMode,
    spec: &ConsumerSpec<T>,
) -> Result<Json, ComputeError> {
    let alphas = request
        .get("alphas")
        .and_then(Json::as_arr)
        .ok_or_else(|| WireError::bad_request("sweep needs an \"alphas\" array"))
        .map_err(ComputeError::from)?;
    let alphas_key = json::to_string(&Json::Arr(alphas.to_vec()));
    let streaming = v == PROTOCOL_VERSION;

    if alphas.is_empty() {
        // Nothing to compute or cache; report the disposition the client
        // asked for rather than a miss that never counted.
        let disposition = match mode {
            CacheMode::Bypass => CacheDisposition::Bypass,
            CacheMode::Use => CacheDisposition::Miss,
        };
        if streaming {
            let result = Json::obj()
                .with("count", Json::num_u64(0))
                .with("stats", stats_to_wire(&Default::default()));
            return Ok(sweep_done_frame(v, id, disposition, result));
        }
        return Ok(ok_response(
            v,
            id.clone(),
            Some(disposition),
            Json::obj().with("solves", Json::Arr(Vec::new())),
        ));
    }

    let spec_canonical = json::to_string(&spec.encode_onto(Json::obj()));
    let memo_key = memo_key("sweep", T::TAG, &spec_canonical, &alphas_key);
    if mode == CacheMode::Use && !shared.verify_hits {
        // Fast hit path (see `Shared::key_memo`): skip α/spec validation
        // when this exact canonical request has validated before and its
        // rendering is still cached. An evicted (or still-computing) entry
        // falls through to the full path, whose own lookup then recounts the
        // miss — an overcount only in that rare window.
        if let Some(key) = shared.key_memo.get(&memo_key) {
            if let Some(cached) = shared.cache.get(&key) {
                if !streaming {
                    return Ok(ok_response(
                        v,
                        id.clone(),
                        Some(CacheDisposition::Hit),
                        Json::Raw(cached),
                    ));
                }
                return replay_sweep_hit(writer, v, id, &cached);
            }
        }
    }

    // Levels and the consumer validate through the negative cache (a bad α
    // at any position, or a bad spec, is a deterministic rejection).
    let neg_key = neg_key_from("sweep", T::TAG, &spec_canonical, &alphas_key);
    let (levels, validated) = validate_negatively_cached(shared, mode, &neg_key, || {
        let mut levels: Vec<PrivacyLevel<T>> = Vec::with_capacity(alphas.len());
        for value in alphas {
            let alpha = T::from_wire(value)
                .ok_or_else(|| WireError::bad_request("unparsable scalar in alphas"))?;
            levels.push(PrivacyLevel::new(alpha).map_err(WireError::from)?);
        }
        let validated = spec.to_request(levels[0].alpha().clone())?;
        Ok((levels, validated))
    })?;

    let levels_key = json::to_string(&Json::Arr(
        levels.iter().map(|l| l.alpha().to_wire()).collect(),
    ));
    let key = format!(
        "sweep|{}|{}|levels={levels_key}",
        T::TAG,
        validated.fingerprint().canonical()
    );
    if mode == CacheMode::Use {
        shared.key_memo.insert(&memo_key, key.as_str().into());
    }
    let engine = PrivacyEngine::with_threads(shared.sweep_threads);

    if !streaming {
        let (result, cache) = serve_cached(shared, &key, mode, move || {
            let solves = engine.sweep(&levels, &validated).map_err(WireError::from)?;
            let items: Vec<String> = solves.iter().map(render_solve).collect();
            Ok(assemble_solves(items.iter().map(String::as_str)))
        })
        .map_err(ComputeError::from)?;
        return Ok(ok_response(v, id.clone(), Some(cache), result));
    }

    // v2 streaming. Cache hit: replay the monolithic entry item by item —
    // each `sweep_item` is a lexical slice of the cached rendering, so it is
    // byte-identical to the frame the original miss streamed.
    if mode == CacheMode::Use {
        if let Some(cached) = shared.cache.get(&key) {
            if shared.verify_hits {
                let solves = engine
                    .sweep(&levels, &validated)
                    .map_err(|e| ComputeError::from(WireError::from(e)))?;
                let items: Vec<String> = solves.iter().map(render_solve).collect();
                let fresh = assemble_solves(items.iter().map(String::as_str));
                if fresh != *cached {
                    return Err(ComputeError::from(WireError::new(
                        "cache_verify_failed",
                        "cached sweep is not byte-identical to a fresh sweep",
                    )));
                }
            }
            return replay_sweep_hit(writer, v, id, &cached);
        }
    }

    // Miss (or bypass): stream items as they complete, then assemble the
    // monolithic rendering for the cache from the per-item renderings.
    let mut rendered: Vec<Option<Arc<str>>> = vec![None; levels.len()];
    let mut first_error: Option<(usize, WireError)> = None;
    let mut aggregate = privmech_core::PivotStats::default();
    {
        let rendered = &mut rendered;
        let first_error = &mut first_error;
        let aggregate = &mut aggregate;
        engine
            .sweep_with(&levels, &validated, |index, solve| match solve {
                Ok(solve) => {
                    *aggregate += &solve.stats;
                    let item: Arc<str> = render_solve(&solve).into();
                    let _ = writer.send(&sweep_item_frame(
                        v,
                        id,
                        index,
                        Json::Raw(Arc::clone(&item)),
                    ));
                    rendered[index] = Some(item);
                }
                Err(e) => {
                    if first_error.as_ref().is_none_or(|(i, _)| index < *i) {
                        *first_error = Some((index, WireError::from(e)));
                    }
                }
            })
            .map_err(|e| ComputeError::from(WireError::from(e)))?;
    }
    if let Some((index, error)) = first_error {
        // Partial streams are closed by a terminal error frame (matched by
        // id); already-emitted items remain valid solves of their levels.
        return Err(ComputeError::from(WireError::new(
            error.code,
            format!("sweep failed at level index {index}: {}", error.message),
        )));
    }
    let monolithic = crate::proto::assemble_solves(
        rendered
            .iter()
            .map(|item| item.as_deref().expect("every sweep slot is filled")),
    );
    let disposition = if mode == CacheMode::Use {
        shared.cache.insert(&key, monolithic.into());
        CacheDisposition::Miss
    } else {
        CacheDisposition::Bypass
    };
    let result = Json::obj()
        .with("count", Json::num_u64(levels.len() as u64))
        .with("stats", stats_to_wire(&aggregate));
    Ok(sweep_done_frame(v, id, disposition, result))
}

/// Replay a cached monolithic sweep as a v2 stream. The cached entry is
/// split lexically ([`crate::proto::split_solves`]) instead of parsed as a
/// tree: per item the replay costs one slice copy into an `Arc<str>` plus a
/// parse of the item's small trailing `"stats"` object (for the terminal
/// aggregate) — the mechanism matrix, which dominates the entry's bytes,
/// is never parsed.
fn replay_sweep_hit(
    writer: &Arc<ConnWriter>,
    v: u64,
    id: &Json,
    cached: &Arc<str>,
) -> Result<Json, ComputeError> {
    let items = crate::proto::split_solves(cached)
        .ok_or_else(|| ComputeError::from(WireError::new("internal", "malformed cached sweep")))?;
    let mut aggregate = privmech_core::PivotStats::default();
    for (index, item) in items.iter().enumerate() {
        if let Some(stats) = item_stats(item) {
            aggregate += &stats;
        }
        let _ = writer.send(&sweep_item_frame(v, id, index, Json::Raw(Arc::from(*item))));
    }
    let result = Json::obj()
        .with("count", Json::num_u64(items.len() as u64))
        .with("stats", stats_to_wire(&aggregate));
    Ok(sweep_done_frame(v, id, CacheDisposition::Hit, result))
}

/// Parse just the trailing `"stats":{...}` object out of one cached solve
/// rendering. [`render_solve`] renders `stats` as the last field, so the
/// object runs from the marker to the item's closing brace.
fn item_stats(item: &str) -> Option<privmech_core::PivotStats> {
    let at = item.rfind("\"stats\":")? + "\"stats\":".len();
    let parsed = json::parse(item.get(at..item.len().checked_sub(1)?)?).ok()?;
    stats_from_wire(&parsed)
}

fn scalar_field<T: WireScalar>(request: &Json, field: &str) -> Result<T, WireError> {
    let value = request
        .get(field)
        .ok_or_else(|| WireError::bad_request(format!("request needs \"{field}\"")))?;
    T::from_wire(value)
        .ok_or_else(|| WireError::bad_request(format!("unparsable scalar in \"{field}\"")))
}
