//! The serving loop: a multi-threaded TCP request handler over
//! [`PrivacyEngine`] with a sharded LRU response cache.
//!
//! One accept thread hands connections to a fixed pool of worker threads;
//! each worker serves its connection's frames sequentially (pipelining
//! within one connection would reorder responses; clients open more
//! connections for more parallelism). Every cacheable operation is keyed on
//! the canonical request fingerprint
//! ([`ValidatedRequest::fingerprint`](privmech_core::ValidatedRequest::fingerprint))
//! composed with the operation and scalar tag, so a cached response is
//! byte-identical to what an uncached solve of the same request would render
//! — with [`ServerConfig::verify_hits`], the server re-solves on every hit
//! and *asserts* that identity at runtime.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use privmech_core::{Mechanism, PrivacyEngine, PrivacyLevel, Solve};
use privmech_numerics::Rational;

use crate::cache::{CacheStats, ShardedCache};
use crate::frame::{read_frame, write_frame};
use crate::json::{self, Json};
use crate::proto::{
    matrix_to_wire, mechanism_from_wire, stats_to_wire, CacheDisposition, CacheMode, ConsumerSpec,
    WireError, WireScalar, PROTOCOL_VERSION,
};

/// Configuration of a serving instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads — the number of connections served concurrently.
    pub worker_threads: usize,
    /// Total response-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Number of cache shards (lock granularity).
    pub cache_shards: usize,
    /// Re-solve on every cache hit and assert the cached response is
    /// byte-identical to the fresh one. Turns each hit into a full solve —
    /// for correctness harnesses, not production throughput.
    pub verify_hits: bool,
    /// Worker-thread budget of the per-request engine for `sweep` operations
    /// (connection-level parallelism comes from `worker_threads`).
    pub sweep_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: 4,
            cache_capacity: 4096,
            cache_shards: 8,
            verify_hits: false,
            sweep_threads: 1,
        }
    }
}

struct Shared {
    /// Rendered `result` objects by canonical request key. Storing bytes
    /// rather than trees keeps the hit path allocation-free up to the
    /// envelope: hits splice the `Arc<str>` into the response via
    /// [`Json::Raw`].
    cache: ShardedCache<Arc<str>>,
    verify_hits: bool,
    sweep_threads: usize,
    stop: AtomicBool,
    addr: SocketAddr,
    /// Live connections by id, so a stop can unblock workers parked in
    /// blocking reads by closing their sockets out from under them.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_seq: AtomicU64,
}

/// A running server. Dropping the handle shuts the server down and joins its
/// threads.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Current response-cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Signal the accept loop to stop and join every thread. Also invoked on
    /// drop; calling it explicitly surfaces the join.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until the server stops (e.g. a client sent the `shutdown` op).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn stop_and_join(&mut self) {
        signal_stop(&self.shared);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn signal_stop(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect(shared.addr);
    // Unblock workers parked in blocking reads on open connections.
    for stream in shared
        .conns
        .lock()
        .expect("connection registry poisoned")
        .values()
    {
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// Bind and start serving; returns immediately with a handle.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener =
        TcpListener::bind(
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address")
            })?,
        )?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
        verify_hits: config.verify_hits,
        sweep_threads: config.sweep_threads.max(1),
        stop: AtomicBool::new(false),
        addr,
        conns: Mutex::new(HashMap::new()),
        conn_seq: AtomicU64::new(0),
    });

    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = std::sync::mpsc::channel();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..config.worker_threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || loop {
                let stream = {
                    let guard = rx.lock().expect("connection queue poisoned");
                    guard.recv()
                };
                match stream {
                    Ok(stream) => serve_connection(&shared, stream),
                    Err(_) => break, // accept loop gone: drain complete
                }
            })
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // A send can only fail if every worker died; stop then.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            drop(tx); // lets idle workers observe the close and exit
        })
    };

    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        workers,
    })
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(registered) = stream.try_clone() else {
        return;
    };
    let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    shared
        .conns
        .lock()
        .expect("connection registry poisoned")
        .insert(conn_id, registered);
    // A stop signalled between the registry insert and the reads below still
    // lands: signal_stop closes the registered clone, which shares the
    // underlying socket with both halves.
    if shared.stop.load(Ordering::SeqCst) {
        let _ = stream.shutdown(Shutdown::Both);
    }
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                // A panicking handler (a solver bug, a pathological input
                // that slipped past validation) must cost one response, not
                // the worker thread. Handlers never hold cache locks across
                // compute, so unwinding here cannot poison shared state.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_payload(shared, &payload)
                }));
                let (response, stop_after) = outcome.unwrap_or_else(|_| {
                    (
                        error_response(
                            Json::Null,
                            &WireError::new("internal", "request handler panicked"),
                        ),
                        false,
                    )
                });
                let bytes = json::to_string(&response);
                if write_frame(&mut writer, bytes.as_bytes()).is_err() {
                    break;
                }
                if stop_after {
                    signal_stop(shared);
                    break;
                }
            }
            Err(_) => {
                // Oversized or truncated frame: report if the pipe still
                // works, then drop the connection (framing is unrecoverable).
                let response = error_response(
                    Json::Null,
                    &WireError::new("malformed_frame", "unreadable frame"),
                );
                let _ = write_frame(&mut writer, json::to_string(&response).as_bytes());
                break;
            }
        }
    }
    shared
        .conns
        .lock()
        .expect("connection registry poisoned")
        .remove(&conn_id);
}

fn ok_response(id: Json, cache: Option<CacheDisposition>, result: Json) -> Json {
    let mut obj = Json::obj()
        .with("v", Json::num_u64(PROTOCOL_VERSION))
        .with("id", id)
        .with("ok", Json::Bool(true));
    if let Some(disposition) = cache {
        obj = obj.with("cache", Json::str(disposition.as_wire()));
    }
    obj.with("result", result)
}

fn error_response(id: Json, error: &WireError) -> Json {
    Json::obj()
        .with("v", Json::num_u64(PROTOCOL_VERSION))
        .with("id", id)
        .with("ok", Json::Bool(false))
        .with(
            "error",
            Json::obj()
                .with("code", Json::str(error.code))
                .with("message", Json::str(error.message.clone())),
        )
}

/// Handle one raw frame payload; returns the response and whether the server
/// should stop after answering.
fn handle_payload(shared: &Arc<Shared>, payload: &[u8]) -> (Json, bool) {
    let Ok(text) = std::str::from_utf8(payload) else {
        return (
            error_response(
                Json::Null,
                &WireError::new("malformed_json", "frame is not UTF-8"),
            ),
            false,
        );
    };
    let request = match json::parse(text) {
        Ok(value) => value,
        Err(e) => {
            return (
                error_response(Json::Null, &WireError::new("malformed_json", e.to_string())),
                false,
            )
        }
    };
    let id = request.get("id").cloned().unwrap_or(Json::Null);
    match request.get("v").and_then(Json::as_u64) {
        Some(PROTOCOL_VERSION) => {}
        got => {
            let message = match got {
                Some(v) => format!("server speaks protocol v{PROTOCOL_VERSION}, request is v{v}"),
                None => format!("request needs an integer \"v\" (= {PROTOCOL_VERSION})"),
            };
            return (
                error_response(id, &WireError::new("unsupported_version", message)),
                false,
            );
        }
    }
    let op = request.get("op").and_then(Json::as_str).unwrap_or("");
    match op {
        "ping" => (
            ok_response(id, None, Json::obj().with("pong", Json::Bool(true))),
            false,
        ),
        "stats" => {
            let stats = shared.cache.stats();
            let result = Json::obj()
                .with("hits", Json::num_u64(stats.hits))
                .with("misses", Json::num_u64(stats.misses))
                .with("evictions", Json::num_u64(stats.evictions))
                .with("entries", Json::num_u64(stats.entries as u64))
                .with("capacity", Json::num_u64(stats.capacity as u64))
                .with("shards", Json::num_u64(stats.shards as u64));
            (ok_response(id, None, result), false)
        }
        "shutdown" => (
            ok_response(id, None, Json::obj().with("stopping", Json::Bool(true))),
            true,
        ),
        "solve" | "sweep" | "interact" => {
            let outcome = match request.get("scalar").and_then(Json::as_str) {
                Some("rational") | None => handle_compute::<Rational>(shared, op, &request),
                Some("f64") => handle_compute::<f64>(shared, op, &request),
                Some(other) => Err(WireError::new(
                    "unsupported_scalar",
                    format!("unknown scalar backend \"{other}\""),
                )),
            };
            match outcome {
                Ok((result, cache)) => (ok_response(id, Some(cache), result), false),
                Err(e) => (error_response(id, &e), false),
            }
        }
        "" => (
            error_response(id, &WireError::bad_request("request needs an \"op\"")),
            false,
        ),
        other => (
            error_response(
                id,
                &WireError::new("unknown_op", format!("unknown op \"{other}\"")),
            ),
            false,
        ),
    }
}

/// Answer from the cache or compute; `Bypass` computes without touching the
/// cache. With `verify_hits`, every hit re-computes and asserts byte
/// identity against the cached rendering.
fn serve_cached(
    shared: &Shared,
    key: &str,
    mode: CacheMode,
    compute: impl FnOnce() -> Result<Json, WireError>,
) -> Result<(Json, CacheDisposition), WireError> {
    if mode == CacheMode::Bypass {
        return Ok((compute()?, CacheDisposition::Bypass));
    }
    if let Some(cached) = shared.cache.get(key) {
        if shared.verify_hits {
            let fresh = compute()?;
            if json::to_string(&fresh) != *cached {
                return Err(WireError::new(
                    "cache_verify_failed",
                    "cached response is not byte-identical to a fresh solve",
                ));
            }
        }
        return Ok((Json::Raw(cached), CacheDisposition::Hit));
    }
    let fresh = compute()?;
    let rendered: Arc<str> = json::to_string(&fresh).into();
    shared.cache.insert(key, Arc::clone(&rendered));
    Ok((Json::Raw(rendered), CacheDisposition::Miss))
}

fn solve_to_wire<T: WireScalar>(solve: &Solve<T>) -> Json {
    Json::obj()
        .with("alpha", solve.level.alpha().to_wire())
        .with("loss", solve.loss.to_wire())
        .with("mechanism", matrix_to_wire(solve.mechanism.matrix()))
        .with("stats", stats_to_wire(&solve.stats))
}

fn handle_compute<T: WireScalar>(
    shared: &Shared,
    op: &str,
    request: &Json,
) -> Result<(Json, CacheDisposition), WireError> {
    let mode = CacheMode::from_wire(request)?;
    let spec = ConsumerSpec::<T>::from_wire(request)?;
    match op {
        "solve" => {
            let alpha = scalar_field::<T>(request, "alpha")?;
            let validated = spec.to_request(alpha)?;
            let key = format!("solve|{}|{}", T::TAG, validated.fingerprint().canonical());
            serve_cached(shared, &key, mode, || {
                let solve = PrivacyEngine::with_threads(1)
                    .solve(&validated)
                    .map_err(WireError::from)?;
                Ok(solve_to_wire(&solve))
            })
        }
        "sweep" => {
            let alphas = request
                .get("alphas")
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError::bad_request("sweep needs an \"alphas\" array"))?;
            let mut levels: Vec<PrivacyLevel<T>> = Vec::with_capacity(alphas.len());
            for value in alphas {
                let alpha = T::from_wire(value)
                    .ok_or_else(|| WireError::bad_request("unparsable scalar in alphas"))?;
                levels.push(PrivacyLevel::new(alpha).map_err(WireError::from)?);
            }
            if levels.is_empty() {
                // Nothing to compute or cache; report the disposition the
                // client asked for rather than a miss that never counted.
                let disposition = match mode {
                    CacheMode::Bypass => CacheDisposition::Bypass,
                    CacheMode::Use => CacheDisposition::Miss,
                };
                return Ok((
                    Json::obj().with("solves", Json::Arr(Vec::new())),
                    disposition,
                ));
            }
            let validated = spec.to_request(levels[0].alpha().clone())?;
            let levels_key = json::to_string(&Json::Arr(
                levels.iter().map(|l| l.alpha().to_wire()).collect(),
            ));
            let key = format!(
                "sweep|{}|{}|levels={levels_key}",
                T::TAG,
                validated.fingerprint().canonical()
            );
            let sweep_threads = shared.sweep_threads;
            serve_cached(shared, &key, mode, move || {
                let solves = PrivacyEngine::with_threads(sweep_threads)
                    .sweep(&levels, &validated)
                    .map_err(WireError::from)?;
                Ok(Json::obj().with(
                    "solves",
                    Json::Arr(solves.iter().map(solve_to_wire).collect()),
                ))
            })
        }
        "interact" => {
            let mechanism: Mechanism<T> = mechanism_from_wire(
                request
                    .get("mechanism")
                    .ok_or_else(|| WireError::bad_request("interact needs a \"mechanism\""))?,
            )?;
            if mechanism.n() != spec.n {
                return Err(WireError::bad_request(format!(
                    "mechanism is for n = {}, request says n = {}",
                    mechanism.n(),
                    spec.n
                )));
            }
            // The privacy level plays no role in post-processing (the
            // deployed mechanism already embodies it) and the strategy is
            // not consulted; both are normalized out of the cache key.
            let spec = spec.with_strategy(Default::default());
            let validated = spec.to_request(T::zero())?;
            let mech_key = json::to_string(&matrix_to_wire(mechanism.matrix()));
            let key = format!(
                "interact|{}|{}|mech={mech_key}",
                T::TAG,
                validated.fingerprint().canonical()
            );
            serve_cached(shared, &key, mode, move || {
                let interaction = PrivacyEngine::with_threads(1)
                    .interact(&mechanism, &validated)
                    .map_err(WireError::from)?;
                Ok(Json::obj()
                    .with("loss", interaction.loss.to_wire())
                    .with(
                        "post_processing",
                        matrix_to_wire(&interaction.post_processing),
                    )
                    .with("induced", matrix_to_wire(interaction.induced.matrix()))
                    .with("stats", stats_to_wire(&interaction.lp_stats)))
            })
        }
        _ => unreachable!("dispatch covers every compute op"),
    }
}

fn scalar_field<T: WireScalar>(request: &Json, field: &str) -> Result<T, WireError> {
    let value = request
        .get(field)
        .ok_or_else(|| WireError::bad_request(format!("request needs \"{field}\"")))?;
    T::from_wire(value)
        .ok_or_else(|| WireError::bad_request(format!("unparsable scalar in \"{field}\"")))
}
