//! A sharded, in-process LRU response cache.
//!
//! The paper is why this cache is *correct*, not just fast: a tailored
//! optimum depends only on the request content (Theorem 1 makes the same
//! deployed mechanism optimal for every consumer), so one cached solve
//! answers every client asking the same `(kind, n, α, loss, side-info)`
//! question. Keys are the canonical fingerprints of
//! [`privmech_core::RequestFingerprint`] composed with the operation and
//! scalar tag; values are whatever the server rendered — byte-identical on
//! every future hit because rendering is deterministic.
//!
//! Sharding: keys are distributed over `shards` independent mutexes by the
//! fingerprint hash, so concurrent workers contend only when they touch the
//! same shard. Each shard runs an exact LRU (doubly-linked list over a slab),
//! so eviction is O(1) and strictly least-recently-*used* order — a `get`
//! refreshes recency, an overwriting `insert` refreshes it too.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use privmech_core::fingerprint::fnv1a;

/// Point-in-time counters of a [`ShardedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Total capacity across shards.
    pub capacity: usize,
    /// Number of shards.
    pub shards: usize,
}

const NIL: usize = usize::MAX;

struct Entry<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// One shard: an exact LRU over a slab-backed doubly-linked list.
struct LruShard<V> {
    map: HashMap<String, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: usize,
}

impl<V: Clone> LruShard<V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn get(&mut self, key: &str) -> Option<V> {
        let slot = *self.map.get(key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.slab[slot].value.clone())
    }

    /// Insert or overwrite; returns the number of evictions performed (0/1).
    fn insert(&mut self, key: &str, value: V) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        if let Some(&slot) = self.map.get(key) {
            self.slab[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return 0;
        }
        let mut evictions = 0;
        if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::take(&mut self.slab[victim].key);
            self.map.remove(&old_key);
            self.free.push(victim);
            evictions = 1;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot].key = key.to_string();
                self.slab[slot].value = value;
                slot
            }
            None => {
                self.slab.push(Entry {
                    key: key.to_string(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.push_front(slot);
        self.map.insert(key.to_string(), slot);
        evictions
    }

    /// Keys from most to least recently used (test/introspection helper).
    fn keys_by_recency(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut slot = self.head;
        while slot != NIL {
            out.push(self.slab[slot].key.clone());
            slot = self.slab[slot].next;
        }
        out
    }

    /// `(key, value)` pairs from least to most recently used, so re-inserting
    /// them in order reproduces this shard's recency order.
    fn entries_lru_first(&self) -> Vec<(String, V)> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut slot = self.tail;
        while slot != NIL {
            out.push((self.slab[slot].key.clone(), self.slab[slot].value.clone()));
            slot = self.slab[slot].prev;
        }
        out
    }
}

/// A thread-safe cache of `String → V` with per-shard exact LRU eviction and
/// global hit/miss/eviction counters.
pub struct ShardedCache<V> {
    shards: Vec<Mutex<LruShard<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
}

impl<V: Clone> ShardedCache<V> {
    /// A cache holding up to `capacity` entries spread over `shards` shards
    /// (both clamped to at least 1; per-shard capacity is the ceiling
    /// division, so total capacity is within `shards - 1` of the request).
    /// A `capacity` of 0 disables storage: every lookup misses.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity: per_shard * shards,
        }
    }

    fn shard_for(&self, key: &str) -> &Mutex<LruShard<V>> {
        &self.shards[self.shard_index(key)]
    }

    /// Look up a key, refreshing its recency on a hit. Counts a hit or miss.
    pub fn get(&self, key: &str) -> Option<V> {
        let found = self
            .shard_for(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert or overwrite a key, evicting the shard's least recently used
    /// entry if the shard is full.
    pub fn insert(&self, key: &str, value: V) {
        let evicted = self
            .shard_for(key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Number of resident entries (sums shard sizes; a racing snapshot).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
            shards: self.shards.len(),
        }
    }

    /// Keys of one shard from most to least recently used (for tests; shard
    /// indices follow the same hash used for placement).
    #[must_use]
    pub fn shard_keys_by_recency(&self, shard: usize) -> Vec<String> {
        self.shards[shard]
            .lock()
            .expect("cache shard poisoned")
            .keys_by_recency()
    }

    /// The shard index a key maps to (stable for a given shard count).
    #[must_use]
    pub fn shard_index(&self, key: &str) -> usize {
        (fnv1a(key.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Every resident `(key, value)` pair, least recently used first within
    /// each shard (shards concatenated). Re-inserting the pairs in order into
    /// an empty cache of any geometry reproduces per-shard recency — this is
    /// the export half of cross-process cache persistence (see
    /// [`crate::persist`]).
    #[must_use]
    pub fn export_lru_first(&self) -> Vec<(String, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .lock()
                    .expect("cache shard poisoned")
                    .entries_lru_first(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_lru_evicts_least_recently_used() {
        let cache: ShardedCache<u32> = ShardedCache::new(3, 1);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("c", 3);
        // Touch "a" so "b" becomes the LRU victim.
        assert_eq!(cache.get("a"), Some(1));
        cache.insert("d", 4);
        assert_eq!(cache.get("b"), None, "b was least recently used");
        assert_eq!(cache.get("a"), Some(1));
        assert_eq!(cache.get("c"), Some(3));
        assert_eq!(cache.get("d"), Some(4));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 3);
        assert_eq!(cache.shard_keys_by_recency(0), vec!["d", "c", "a"]);
    }

    #[test]
    fn overwrite_refreshes_recency_without_eviction() {
        let cache: ShardedCache<u32> = ShardedCache::new(2, 1);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 10); // overwrite: no eviction, "b" is now LRU
        assert_eq!(cache.stats().evictions, 0);
        cache.insert("c", 3);
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some(10));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache: ShardedCache<u32> = ShardedCache::new(0, 4);
        cache.insert("a", 1);
        assert_eq!(cache.get("a"), None);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().capacity, 0);
    }

    #[test]
    fn slab_slots_are_reused_after_eviction() {
        let cache: ShardedCache<u32> = ShardedCache::new(2, 1);
        for i in 0..100u32 {
            cache.insert(&format!("k{i}"), i);
        }
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 98);
        assert_eq!(cache.get("k99"), Some(99));
        assert_eq!(cache.get("k98"), Some(98));
        // The slab never grew past capacity + nothing.
        let shard = cache.shards[0].lock().unwrap();
        assert!(shard.slab.len() <= 2);
    }
}
