//! The fleet router: one listen address fronting N `privmech-serve` shard
//! processes, with requests partitioned by consistent hashing on the
//! canonical request key.
//!
//! # Why routing preserves byte identity
//!
//! Every compute response is a deterministic function of the *parsed*
//! request (the server re-renders parsed trees into its envelopes and cache
//! keys; it never echoes raw client bytes), so any shard produces the same
//! bytes for the same request — the paper's mechanisms are pure functions of
//! the consumer. What sharding buys is **cache partitioning**: the ring
//! ([`crate::ring`]) sends every spelling of a request that shares a
//! canonical key ([`crate::proto::routing_key`], mirroring the server's
//! key-memo keys) to the same shard, so each shard's LRU holds a disjoint
//! slice of the keyspace and the fleet's aggregate cache capacity scales
//! with shard count. Routing costs one parse and one re-render per frame —
//! never a validation.
//!
//! # Mechanics
//!
//! The router is a single readiness loop (same machinery as the server's):
//! it decodes client frames, rewrites each request's `id` to an internal
//! ticket, forwards it on a multiplexed nonblocking connection to the owning
//! shard, and splices the client's original `id` rendering back into each
//! reply — including every `sweep_item` of a streaming sweep — before
//! relaying it. The splice is lexical (the reply is never re-rendered), so
//! relayed frames are byte-identical to what a direct connection would have
//! read.
//!
//! Per-op routing:
//!
//! * `solve` / `sweep` / `interact` → the ring owner of the canonical key;
//! * `stats` / `metrics` (including `reset`) → fanned out to every live
//!   shard and aggregated, so fleet counters read like one server's;
//! * `shutdown` → broadcast to every live shard (each dumps its cache file),
//!   answered locally, then the router itself stops;
//! * everything else (`ping`, `hello` negotiation, unknown ops, schema
//!   errors) → the lowest live shard, whose reply is deterministic.
//!
//! A dead shard (connect failure, reset, EOF) fails **only its own
//! requests**: every pending ticket on it is answered with a
//! `shard_unavailable` error frame and the shard enters a short cooldown;
//! reconnection is attempted (bounded) on the next request it owns, reading
//! the shard's current address — [`RouterHandle::update_shard`] re-admits a
//! restarted shard at a new port without disturbing ring ownership, which
//! hashes stable shard *indices*.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::{self, Json};
use crate::metrics::TRACKED_OPS;
use crate::proto::{routing_key, WireError, PROTOCOL_V1, PROTOCOL_VERSION};
use crate::readiness::{FrameReader, Outbox};
use crate::ring::{ShardRing, DEFAULT_VNODES};
use crate::server::{error_response, ok_response, wire_error_json};
use crate::sys::{EpollEvent, Poller, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};

/// Configuration of a router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address; use port 0 for an ephemeral port (read it back from
    /// [`RouterHandle::addr`]).
    pub addr: String,
    /// Shard addresses, one per shard index. Ring ownership hashes the
    /// *index*, so the order given here is the fleet's stable identity.
    pub shards: Vec<String>,
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
    /// Per-client-connection bound on forwarded requests awaiting replies;
    /// enforced by readiness gating exactly like the server's cap. 0
    /// disables the bound.
    pub max_inflight_per_conn: usize,
}

impl RouterConfig {
    /// A router over the given shard addresses with default knobs.
    #[must_use]
    pub fn new(shards: Vec<String>) -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards,
            vnodes: DEFAULT_VNODES,
            max_inflight_per_conn: 256,
        }
    }
}

/// How long a failed shard stays in cooldown before forwarding retries it.
const SHARD_COOLDOWN: Duration = Duration::from_millis(250);

/// Per-request bound on reconnection attempts to a cold shard.
const CONNECT_ATTEMPTS: usize = 2;

/// Timeout of one reconnection attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// How long a stopping router keeps flushing before force-closing.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

struct RouterShared {
    stop: AtomicBool,
    wake: WakeFd,
    addr: SocketAddr,
    /// Current shard addresses by index, consulted on every reconnection —
    /// restarted shards may come back on fresh ephemeral ports.
    addrs: Mutex<Vec<String>>,
}

/// A running router. Dropping the handle shuts it down and joins its thread.
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    event: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound listen address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Point shard `index` at a new address — re-admits a restarted shard.
    /// Takes effect on the next reconnection attempt; ring ownership is
    /// untouched (it hashes the index, not the address).
    pub fn update_shard(&self, index: usize, addr: impl Into<String>) {
        let mut addrs = self
            .shared
            .addrs
            .lock()
            .expect("shard address list poisoned");
        if let Some(slot) = addrs.get_mut(index) {
            *slot = addr.into();
        }
    }

    /// Signal the loop to stop and join it. Also invoked on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until the router stops (e.g. a client sent `shutdown`).
    pub fn join(mut self) {
        if let Some(event) = self.event.take() {
            let _ = event.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake.signal();
        if let Some(event) = self.event.take() {
            let _ = event.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind and start routing; returns immediately with a handle. Shards are
/// connected lazily, on the first request each one owns.
pub fn spawn(config: RouterConfig) -> io::Result<RouterHandle> {
    if config.shards.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a router needs at least one shard",
        ));
    }
    let listener =
        TcpListener::bind(
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address")
            })?,
        )?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(RouterShared {
        stop: AtomicBool::new(false),
        wake: WakeFd::new()?,
        addr,
        addrs: Mutex::new(config.shards.clone()),
    });
    let poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
    poller.register(shared.wake.as_raw_fd(), TOKEN_WAKE, EPOLLIN)?;

    let nshards = config.shards.len();
    let now = Instant::now();
    let event = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            RouterLoop {
                shared,
                poller,
                listener,
                ring: ShardRing::new(nshards, config.vnodes.max(1)),
                max_inflight: config.max_inflight_per_conn,
                clients: HashMap::new(),
                shards: (0..nshards)
                    .map(|_| ShardState::Down { until: now })
                    .collect(),
                owned: vec![HashSet::new(); nshards],
                pendings: HashMap::new(),
                aggs: HashMap::new(),
                next_client_token: TOKEN_SHARD_BASE + nshards as u64,
                next_ticket: 1,
                scratch: vec![0u8; 64 * 1024],
            }
            .run();
        })
    };
    Ok(RouterHandle {
        shared,
        event: Some(event),
    })
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
/// Shard `i`'s connection carries token `TOKEN_SHARD_BASE + i`, stable
/// across reconnections; client tokens start above the shard range.
const TOKEN_SHARD_BASE: u64 = 2;

struct ClientConn {
    stream: TcpStream,
    reader: FrameReader,
    outbox: Outbox,
    interest: u32,
    read_closed: bool,
    closing: bool,
    /// Forwarded requests awaiting their terminal reply (the readiness-gated
    /// in-flight count).
    inflight: usize,
}

struct ShardConn {
    stream: TcpStream,
    reader: FrameReader,
    outbox: Outbox,
    interest: u32,
}

enum ShardState {
    Up(ShardConn),
    Down { until: Instant },
}

/// What a ticket (rewritten request id) resolves to when its reply arrives.
enum Pending {
    /// Relay to a client, restoring its original `id` rendering.
    Forward {
        client: u64,
        id_rendering: String,
        v: u64,
    },
    /// One member of a `stats`/`metrics` fan-out, remembering which shard it
    /// was sent to so `metrics` can report a per-shard breakdown.
    AggMember { agg: u64, shard: usize },
    /// A broadcast whose reply nobody needs (`shutdown`).
    Discard,
}

/// An in-progress `stats`/`metrics` fan-out.
struct Agg {
    client: u64,
    v: u64,
    id_rendering: String,
    waiting: usize,
    successes: usize,
    acc: AggAcc,
}

enum AggAcc {
    Stats(StatsAcc),
    Metrics(MetricsAcc),
}

/// Summed fleet cache counters, in the server's `stats` field order.
#[derive(Default)]
struct StatsAcc {
    sums: [u64; STATS_SUM_FIELDS.len()],
    max_inflight: u64,
    inflight_peak: u64,
}

/// The `stats` result fields that add across shards (capacity and entry
/// counts genuinely sum: shards hold disjoint keyspace slices).
const STATS_SUM_FIELDS: [&str; 11] = [
    "hits",
    "misses",
    "evictions",
    "entries",
    "capacity",
    "shards",
    "neg_hits",
    "neg_misses",
    "neg_evictions",
    "neg_entries",
    "neg_capacity",
];

/// Merged per-op latency histograms: counts and totals sum; sparse buckets
/// merge by their `le_ns` bound. Each member's contribution is also kept
/// keyed by shard index, so the fleet reply can expose per-shard latency
/// skew (`shards: [{shard, ops: {...}}]`) from the one endpoint.
#[derive(Default)]
struct MetricsAcc {
    ops: HashMap<String, OpAcc>,
    per_shard: Vec<(usize, HashMap<String, OpAcc>)>,
}

#[derive(Default)]
struct OpAcc {
    count: u64,
    total_ns: u64,
    buckets: HashMap<u64, u64>,
}

struct RouterLoop {
    shared: Arc<RouterShared>,
    poller: Poller,
    listener: TcpListener,
    ring: ShardRing,
    max_inflight: usize,
    clients: HashMap<u64, ClientConn>,
    shards: Vec<ShardState>,
    /// Tickets outstanding on each shard, for fault fan-out on death.
    owned: Vec<HashSet<u64>>,
    pendings: HashMap<u64, Pending>,
    aggs: HashMap<u64, Agg>,
    next_client_token: u64,
    next_ticket: u64,
    scratch: Vec<u8>,
}

impl RouterLoop {
    fn run(mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; 64];
        let mut draining = false;
        let mut drain_deadline = Instant::now();
        loop {
            let timeout = if draining { 20 } else { 500 };
            let Ok(n) = self.poller.wait(&mut events, timeout) else {
                break;
            };
            for event in &events[..n] {
                let token = event.data;
                let mask = event.events;
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.shared.wake.drain(),
                    token if token < TOKEN_SHARD_BASE + self.shards.len() as u64 => {
                        self.shard_ready((token - TOKEN_SHARD_BASE) as usize, mask);
                    }
                    token => self.client_ready(token, mask),
                }
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                if !draining {
                    draining = true;
                    drain_deadline = Instant::now() + DRAIN_GRACE;
                    let _ = self.poller.deregister(self.listener.as_raw_fd());
                    let tokens: Vec<u64> = self.clients.keys().copied().collect();
                    for token in tokens {
                        if let Some(client) = self.clients.get_mut(&token) {
                            client.read_closed = true;
                            client.closing = true;
                        }
                        self.service_client(token);
                    }
                }
                // Quiesced = every outbox flushed (shutdown broadcasts must
                // reach the shards before the router exits).
                let flushed = self.clients.values().all(|c| c.outbox.is_empty())
                    && self.shards.iter().all(|s| match s {
                        ShardState::Up(conn) => conn.outbox.is_empty(),
                        ShardState::Down { .. } => true,
                    });
                if flushed || Instant::now() >= drain_deadline {
                    break;
                }
            }
        }
        for (_, client) in self.clients.drain() {
            let _ = client.stream.shutdown(Shutdown::Both);
        }
        for shard in &self.shards {
            if let ShardState::Up(conn) = shard {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.stop.load(Ordering::SeqCst) {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_client_token;
                    self.next_client_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, EPOLLIN)
                        .is_err()
                    {
                        continue;
                    }
                    self.clients.insert(
                        token,
                        ClientConn {
                            stream,
                            reader: FrameReader::new(),
                            outbox: Outbox::new(),
                            interest: EPOLLIN,
                            read_closed: false,
                            closing: false,
                            inflight: 0,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // Client side
    // ------------------------------------------------------------------

    fn client_ready(&mut self, token: u64, mask: u32) {
        let Some(client) = self.clients.get_mut(&token) else {
            return;
        };
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.drop_client(token);
            return;
        }
        if mask & EPOLLIN != 0 && !client.read_closed {
            match client.reader.fill(&mut &client.stream, &mut self.scratch) {
                Ok(eof) => client.read_closed |= eof,
                Err(_) => {
                    self.drop_client(token);
                    return;
                }
            }
        }
        self.service_client(token);
    }

    /// Decode and dispatch buffered client frames (gated at the in-flight
    /// cap), flush the outbox, update interest, tear down when finished.
    fn service_client(&mut self, token: u64) {
        enum DecodeEnd {
            NoMore,
            Capped,
            Fatal,
        }
        let mut end = DecodeEnd::NoMore;
        loop {
            let frame = {
                let Some(client) = self.clients.get_mut(&token) else {
                    return;
                };
                if client.closing {
                    break;
                }
                if self.max_inflight != 0 && client.inflight >= self.max_inflight {
                    end = DecodeEnd::Capped;
                    break;
                }
                match client.reader.next_frame() {
                    Ok(Some(payload)) => payload,
                    Ok(None) => break,
                    Err(_) => {
                        end = DecodeEnd::Fatal;
                        break;
                    }
                }
            };
            self.handle_client_frame(token, &frame);
        }
        {
            let Some(client) = self.clients.get_mut(&token) else {
                return;
            };
            let truncated = matches!(end, DecodeEnd::NoMore)
                && client.read_closed
                && client.reader.has_partial();
            if !client.closing && (matches!(end, DecodeEnd::Fatal) || truncated) {
                client.closing = true;
                let frame = error_response(
                    PROTOCOL_VERSION,
                    Json::Null,
                    wire_error_json(&WireError::new("malformed_frame", "unreadable frame")),
                    None,
                );
                let _ = client.outbox.push_frame(json::to_string(&frame).as_bytes());
            }
        }
        self.flush_client(token);
    }

    /// Pump the client's outbox, refresh poller interest, and tear the
    /// connection down once it has nothing left to do.
    fn flush_client(&mut self, token: u64) {
        let Some(client) = self.clients.get_mut(&token) else {
            return;
        };
        let flushed = match client.outbox.pump(&mut &client.stream) {
            Ok(emptied) => emptied,
            Err(_) => {
                self.drop_client(token);
                return;
            }
        };
        let at_cap = self.max_inflight != 0 && client.inflight >= self.max_inflight;
        let readable = !client.read_closed && !client.closing && !at_cap;
        let desired = if readable { EPOLLIN } else { 0 } | if flushed { 0 } else { EPOLLOUT };
        if desired != client.interest
            && self
                .poller
                .modify(client.stream.as_raw_fd(), token, desired)
                .is_ok()
        {
            client.interest = desired;
        }
        if (client.closing || client.read_closed) && flushed && client.inflight == 0 {
            self.drop_client(token);
        }
    }

    fn drop_client(&mut self, token: u64) {
        if let Some(client) = self.clients.remove(&token) {
            let _ = self.poller.deregister(client.stream.as_raw_fd());
            let _ = client.stream.shutdown(Shutdown::Both);
        }
        // Tickets this client had in flight drain lazily: replies arriving
        // for a gone client are discarded on receipt.
    }

    /// Queue a locally-built reply frame on a client's outbox.
    fn reply_local(&mut self, token: u64, frame: &Json) {
        if let Some(client) = self.clients.get_mut(&token) {
            let _ = client.outbox.push_frame(json::to_string(frame).as_bytes());
        }
        self.flush_client(token);
    }

    fn handle_client_frame(&mut self, token: u64, payload: &[u8]) {
        // Frames the *server* would reject before reaching an op handler are
        // rejected here with the identical bytes (same codes, same messages,
        // same envelope rendering): there is nothing cache-dependent to
        // route.
        let Ok(text) = std::str::from_utf8(payload) else {
            self.reply_local(
                token,
                &error_response(
                    PROTOCOL_VERSION,
                    Json::Null,
                    wire_error_json(&WireError::new("malformed_json", "frame is not UTF-8")),
                    None,
                ),
            );
            return;
        };
        let request = match json::parse(text) {
            Ok(value) => value,
            Err(e) => {
                self.reply_local(
                    token,
                    &error_response(
                        PROTOCOL_VERSION,
                        Json::Null,
                        wire_error_json(&WireError::new("malformed_json", e.to_string())),
                        None,
                    ),
                );
                return;
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let v = request.get("v").and_then(Json::as_u64);
        if v == Some(PROTOCOL_VERSION) && id == Json::Null {
            // Enforced locally: the forwarded request necessarily carries a
            // ticket id, so the shard could never reproduce this rejection.
            self.reply_local(
                token,
                &error_response(
                    PROTOCOL_VERSION,
                    Json::Null,
                    wire_error_json(&WireError::bad_request(
                        "v2 requests must carry a client-chosen \"id\"",
                    )),
                    None,
                ),
            );
            return;
        }
        // The v recorded on the ticket shapes only *synthesized* failure
        // frames; the server echoes v2 for invalid versions, so mirror that.
        let v_eff = match v {
            Some(v @ (PROTOCOL_V1 | PROTOCOL_VERSION)) => v,
            _ => PROTOCOL_VERSION,
        };
        // Fleet-level ops are only intercepted for valid versions — an
        // invalid `v` must reach a shard so the client gets the server's
        // exact `unsupported_version` bytes (and a bad-version `shutdown`
        // must stop nothing).
        let v_valid = matches!(v, Some(PROTOCOL_V1 | PROTOCOL_VERSION));
        let op = request.get("op").and_then(Json::as_str).unwrap_or("");
        match op {
            "stats" | "metrics" if v_valid => self.handle_agg(token, v_eff, &id, &request),
            "shutdown" if v_valid => self.handle_shutdown(token, v_eff, id, &request),
            _ => {
                let shard = match routing_key(&request) {
                    Some(key) => self.ring.shard_for(&key),
                    // Keyless requests (ping, hello, schema errors…) have
                    // deterministic, cache-independent responses: any shard
                    // answers them identically.
                    None => self.lowest_live_shard(),
                };
                self.forward(token, shard, v_eff, &id, request);
            }
        }
    }

    // ------------------------------------------------------------------
    // Forwarding
    // ------------------------------------------------------------------

    /// Rewrite the request's id to a fresh ticket and queue it on `shard`'s
    /// connection; on an unreachable shard, answer `shard_unavailable`.
    fn forward(&mut self, token: u64, shard: usize, v: u64, id: &Json, mut request: Json) {
        let id_rendering = json::to_string(id);
        if !self.ensure_shard(shard) {
            self.reply_local(token, &shard_unavailable_frame(v, &id_rendering, shard));
            return;
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        set_field(&mut request, "id", Json::num_u64(ticket));
        let ok = self.push_to_shard(shard, json::to_string(&request).as_bytes());
        if !ok {
            // The push killed the shard (overflow / write error): its
            // pendings were already failed; fail this request the same way.
            self.reply_local(token, &shard_unavailable_frame(v, &id_rendering, shard));
            return;
        }
        self.pendings.insert(
            ticket,
            Pending::Forward {
                client: token,
                id_rendering,
                v,
            },
        );
        self.owned[shard].insert(ticket);
        if let Some(client) = self.clients.get_mut(&token) {
            client.inflight += 1;
        }
    }

    /// The first shard accepting a connection, for keyless requests. Falls
    /// back to shard 0 (whose unavailability then surfaces naturally).
    fn lowest_live_shard(&mut self) -> usize {
        for shard in 0..self.shards.len() {
            if matches!(self.shards[shard], ShardState::Up(_)) {
                return shard;
            }
        }
        for shard in 0..self.shards.len() {
            if self.ensure_shard(shard) {
                return shard;
            }
        }
        0
    }

    /// Make sure `shard` has a live connection, reconnecting (bounded) if
    /// its cooldown has lapsed. Returns whether it is usable.
    fn ensure_shard(&mut self, shard: usize) -> bool {
        match &self.shards[shard] {
            ShardState::Up(_) => true,
            ShardState::Down { until } => {
                if Instant::now() < *until {
                    return false;
                }
                let addr = self
                    .shared
                    .addrs
                    .lock()
                    .expect("shard address list poisoned")
                    .get(shard)
                    .cloned()
                    .unwrap_or_default();
                for _ in 0..CONNECT_ATTEMPTS {
                    let Some(resolved) = resolve(&addr) else {
                        break;
                    };
                    let Ok(stream) = TcpStream::connect_timeout(&resolved, CONNECT_TIMEOUT) else {
                        continue;
                    };
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = TOKEN_SHARD_BASE + shard as u64;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, EPOLLIN)
                        .is_err()
                    {
                        continue;
                    }
                    self.shards[shard] = ShardState::Up(ShardConn {
                        stream,
                        reader: FrameReader::new(),
                        outbox: Outbox::new(),
                        interest: EPOLLIN,
                    });
                    return true;
                }
                self.shards[shard] = ShardState::Down {
                    until: Instant::now() + SHARD_COOLDOWN,
                };
                false
            }
        }
    }

    /// Queue one frame on a shard connection and flush. Returns false — and
    /// fails the shard — if the push or flush breaks the connection.
    fn push_to_shard(&mut self, shard: usize, payload: &[u8]) -> bool {
        let pushed = match &mut self.shards[shard] {
            ShardState::Up(conn) => conn.outbox.push_frame(payload).is_ok(),
            ShardState::Down { .. } => false,
        };
        if !pushed {
            self.kill_shard(shard);
            return false;
        }
        self.flush_shard(shard)
    }

    /// Pump a shard's outbox and refresh its poller interest. Returns false
    /// — and fails the shard — on a write error.
    fn flush_shard(&mut self, shard: usize) -> bool {
        let ShardState::Up(conn) = &mut self.shards[shard] else {
            return false;
        };
        let flushed = match conn.outbox.pump(&mut &conn.stream) {
            Ok(emptied) => emptied,
            Err(_) => {
                self.kill_shard(shard);
                return false;
            }
        };
        let desired = EPOLLIN | if flushed { 0 } else { EPOLLOUT };
        if desired != conn.interest {
            let token = TOKEN_SHARD_BASE + shard as u64;
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_ok()
            {
                conn.interest = desired;
            }
        }
        true
    }

    /// A shard connection failed: close it, start its cooldown, and fail
    /// every ticket it owned with `shard_unavailable` — other shards'
    /// traffic is untouched.
    fn kill_shard(&mut self, shard: usize) {
        let state = std::mem::replace(
            &mut self.shards[shard],
            ShardState::Down {
                until: Instant::now() + SHARD_COOLDOWN,
            },
        );
        if let ShardState::Up(conn) = state {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        let tickets: Vec<u64> = self.owned[shard].drain().collect();
        for ticket in tickets {
            match self.pendings.remove(&ticket) {
                Some(Pending::Forward {
                    client,
                    id_rendering,
                    v,
                }) => {
                    let frame = shard_unavailable_frame(v, &id_rendering, shard);
                    if let Some(conn) = self.clients.get_mut(&client) {
                        let _ = conn.outbox.push_frame(json::to_string(&frame).as_bytes());
                        conn.inflight = conn.inflight.saturating_sub(1);
                    }
                    self.service_client(client);
                }
                Some(Pending::AggMember { agg, shard }) => self.agg_member_done(agg, shard, None),
                Some(Pending::Discard) | None => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Shard side
    // ------------------------------------------------------------------

    fn shard_ready(&mut self, shard: usize, mask: u32) {
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.kill_shard(shard);
            return;
        }
        let mut eof = false;
        if mask & EPOLLIN != 0 {
            let ShardState::Up(conn) = &mut self.shards[shard] else {
                return;
            };
            match conn.reader.fill(&mut &conn.stream, &mut self.scratch) {
                Ok(e) => eof = e,
                Err(_) => {
                    self.kill_shard(shard);
                    return;
                }
            }
        }
        // Relay every complete buffered reply before acting on the EOF, so
        // a shard that answered-then-exited loses nothing.
        loop {
            let frame = {
                let ShardState::Up(conn) = &mut self.shards[shard] else {
                    return;
                };
                match conn.reader.next_frame() {
                    Ok(Some(payload)) => payload,
                    Ok(None) => break,
                    Err(_) => {
                        self.kill_shard(shard);
                        return;
                    }
                }
            };
            self.handle_shard_reply(shard, &frame);
        }
        if eof {
            self.kill_shard(shard);
            return;
        }
        if mask & EPOLLOUT != 0 {
            self.flush_shard(shard);
        }
    }

    /// One reply frame from a shard: splice the original client id back in
    /// (lexically — the reply is never re-rendered, preserving byte
    /// identity) and relay it; terminal frames retire the ticket.
    fn handle_shard_reply(&mut self, shard: usize, payload: &[u8]) {
        let Ok(text) = std::str::from_utf8(payload) else {
            return;
        };
        let Some((ticket, id_start, id_end)) = lexical_ticket(text) else {
            return;
        };
        let head = &text[..text.len().min(96)];
        let terminal = !head.contains("\"stream\":\"sweep_item\"");
        // Relay first (under a shared borrow of the ticket), then retire the
        // ticket and run the follow-up pass.
        enum After {
            Relay { client: u64 },
            Agg { agg: u64, member: usize },
            Discard,
            Nothing,
        }
        let after = match self.pendings.get(&ticket) {
            Some(Pending::Forward {
                client,
                id_rendering,
                ..
            }) => {
                let client = *client;
                let mut spliced = String::with_capacity(text.len() + id_rendering.len());
                spliced.push_str(&text[..id_start]);
                spliced.push_str(id_rendering);
                spliced.push_str(&text[id_end..]);
                if let Some(conn) = self.clients.get_mut(&client) {
                    let _ = conn.outbox.push_frame(spliced.as_bytes());
                }
                After::Relay { client }
            }
            Some(Pending::AggMember { agg, shard }) => After::Agg {
                agg: *agg,
                member: *shard,
            },
            Some(Pending::Discard) => After::Discard,
            None => After::Nothing,
        };
        if terminal && !matches!(after, After::Nothing) {
            self.pendings.remove(&ticket);
            self.owned[shard].remove(&ticket);
        }
        match after {
            After::Relay { client } => {
                if terminal {
                    if let Some(conn) = self.clients.get_mut(&client) {
                        conn.inflight = conn.inflight.saturating_sub(1);
                    }
                    // May un-gate reads and decode more frames.
                    self.service_client(client);
                } else {
                    self.flush_client(client);
                }
            }
            After::Agg { agg, member } => {
                if terminal {
                    self.agg_member_done(agg, member, json::parse(text).ok());
                }
            }
            After::Discard | After::Nothing => {}
        }
    }

    // ------------------------------------------------------------------
    // Fan-out ops
    // ------------------------------------------------------------------

    /// `stats` / `metrics`: forward (rewritten) copies to every reachable
    /// shard and merge the results into one fleet-wide reply. `reset: true`
    /// passes through inside the copies, so a fleet metrics reset clears
    /// every shard's window in one op.
    fn handle_agg(&mut self, token: u64, v: u64, id: &Json, request: &Json) {
        let id_rendering = json::to_string(id);
        let members: Vec<usize> = (0..self.shards.len())
            .filter(|&shard| self.ensure_shard(shard))
            .collect();
        if members.is_empty() {
            self.reply_local(token, &no_shard_frame(v, &id_rendering));
            return;
        }
        let op = request.get("op").and_then(Json::as_str).unwrap_or("");
        // Count the fan-out against the client's in-flight cap *before* the
        // member loop: an all-members-fail fan-out completes synchronously
        // inside it and releases the slot.
        if let Some(client) = self.clients.get_mut(&token) {
            client.inflight += 1;
        }
        let agg_id = self.next_ticket;
        self.next_ticket += 1;
        self.aggs.insert(
            agg_id,
            Agg {
                client: token,
                v,
                id_rendering,
                waiting: members.len(),
                successes: 0,
                acc: if op == "stats" {
                    AggAcc::Stats(StatsAcc::default())
                } else {
                    AggAcc::Metrics(MetricsAcc::default())
                },
            },
        );
        for shard in members {
            let ticket = self.next_ticket;
            self.next_ticket += 1;
            let mut copy = request.clone();
            set_field(&mut copy, "id", Json::num_u64(ticket));
            if self.push_to_shard(shard, json::to_string(&copy).as_bytes()) {
                self.pendings
                    .insert(ticket, Pending::AggMember { agg: agg_id, shard });
                self.owned[shard].insert(ticket);
            } else {
                self.agg_member_done(agg_id, shard, None);
            }
        }
    }

    /// One fan-out member finished (with a parsed reply, or `None` on shard
    /// failure); on the last member, build and send the merged reply.
    fn agg_member_done(&mut self, agg_id: u64, shard: usize, reply: Option<Json>) {
        let Some(agg) = self.aggs.get_mut(&agg_id) else {
            return;
        };
        if let Some(reply) = reply {
            if reply.get("ok").and_then(Json::as_bool) == Some(true) {
                if let Some(result) = reply.get("result") {
                    match &mut agg.acc {
                        AggAcc::Stats(acc) => merge_stats(acc, result),
                        AggAcc::Metrics(acc) => merge_metrics(acc, shard, result),
                    }
                    agg.successes += 1;
                }
            }
        }
        agg.waiting -= 1;
        if agg.waiting > 0 {
            return;
        }
        let agg = self.aggs.remove(&agg_id).expect("agg entry just seen");
        let id = Json::Raw(agg.id_rendering.as_str().into());
        let frame = if agg.successes == 0 {
            error_response(
                agg.v,
                id,
                wire_error_json(&WireError::new(
                    "shard_unavailable",
                    "no shard answered the fan-out",
                )),
                None,
            )
        } else {
            let result = match agg.acc {
                AggAcc::Stats(acc) => render_stats(&acc),
                AggAcc::Metrics(acc) => render_metrics(&acc),
            };
            ok_response(agg.v, id, None, result)
        };
        let client = agg.client;
        if let Some(conn) = self.clients.get_mut(&client) {
            let _ = conn.outbox.push_frame(json::to_string(&frame).as_bytes());
            conn.inflight = conn.inflight.saturating_sub(1);
        }
        self.service_client(client);
    }

    /// `shutdown`: broadcast to every reachable shard (each stops and dumps
    /// its cache file), answer the client locally with the server's exact
    /// reply shape, then stop the router once outboxes flush.
    fn handle_shutdown(&mut self, token: u64, v: u64, id: Json, request: &Json) {
        for shard in 0..self.shards.len() {
            if !self.ensure_shard(shard) {
                continue;
            }
            let ticket = self.next_ticket;
            self.next_ticket += 1;
            let mut copy = request.clone();
            set_field(&mut copy, "id", Json::num_u64(ticket));
            if self.push_to_shard(shard, json::to_string(&copy).as_bytes()) {
                self.pendings.insert(ticket, Pending::Discard);
                self.owned[shard].insert(ticket);
            }
        }
        self.reply_local(
            token,
            &ok_response(v, id, None, Json::obj().with("stopping", Json::Bool(true))),
        );
        self.shared.stop.store(true, Ordering::SeqCst);
    }
}

/// The synthesized failure frame for a request owned by an unreachable
/// shard. The client's original id rendering is spliced in verbatim.
fn shard_unavailable_frame(v: u64, id_rendering: &str, shard: usize) -> Json {
    error_response(
        v,
        Json::Raw(id_rendering.into()),
        wire_error_json(&WireError::new(
            "shard_unavailable",
            format!("shard {shard} is unavailable"),
        )),
        None,
    )
}

/// The failure frame for a fan-out that found no reachable shard at all.
fn no_shard_frame(v: u64, id_rendering: &str) -> Json {
    error_response(
        v,
        Json::Raw(id_rendering.into()),
        wire_error_json(&WireError::new(
            "shard_unavailable",
            "no shard is available",
        )),
        None,
    )
}

/// Replace (or insert) a top-level object field, preserving its position —
/// the request is re-rendered afterwards, and the server derives everything
/// from the parsed tree, so the rewrite cannot perturb response bytes.
fn set_field(request: &mut Json, key: &str, value: Json) {
    if let Json::Obj(pairs) = request {
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
            return;
        }
        pairs.push((key.to_string(), value));
    }
}

/// Locate the ticket in a reply's envelope `"id"` field, lexically: returns
/// `(ticket, start, end)` with `start..end` spanning the digits. Envelopes
/// always render `id` second (after `v`), before any payload that could
/// contain the byte pattern.
fn lexical_ticket(text: &str) -> Option<(u64, usize, usize)> {
    let at = text.find("\"id\":")? + "\"id\":".len();
    let digits = text[at..].bytes().take_while(u8::is_ascii_digit).count();
    let ticket: u64 = text[at..at + digits].parse().ok()?;
    Some((ticket, at, at + digits))
}

fn resolve(addr: &str) -> Option<SocketAddr> {
    addr.to_socket_addrs().ok()?.next()
}

fn merge_stats(acc: &mut StatsAcc, result: &Json) {
    for (slot, field) in acc.sums.iter_mut().zip(STATS_SUM_FIELDS) {
        *slot += result.get(field).and_then(Json::as_u64).unwrap_or(0);
    }
    let max_inflight = result
        .get("max_inflight")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    acc.max_inflight = acc.max_inflight.max(max_inflight);
    let peak = result
        .get("inflight_peak")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    acc.inflight_peak = acc.inflight_peak.max(peak);
}

/// Render summed fleet stats in the server's exact field order.
fn render_stats(acc: &StatsAcc) -> Json {
    let mut obj = Json::obj();
    for (slot, field) in acc.sums.iter().zip(STATS_SUM_FIELDS) {
        obj = obj.with(field, Json::num_u64(*slot));
    }
    obj.with("max_inflight", Json::num_u64(acc.max_inflight))
        .with("inflight_peak", Json::num_u64(acc.inflight_peak))
}

fn merge_metrics(acc: &mut MetricsAcc, shard: usize, result: &Json) {
    let Some(Json::Obj(ops)) = result.get("ops") else {
        return;
    };
    let mut mine: HashMap<String, OpAcc> = HashMap::new();
    for (op, entry) in ops {
        let count = entry.get("count").and_then(Json::as_u64).unwrap_or(0);
        let total_ns = entry.get("total_ns").and_then(Json::as_u64).unwrap_or(0);
        let slot = acc.ops.entry(op.clone()).or_default();
        slot.count += count;
        slot.total_ns += total_ns;
        let local = mine.entry(op.clone()).or_default();
        local.count += count;
        local.total_ns += total_ns;
        for bucket in entry.get("buckets").and_then(Json::as_arr).unwrap_or(&[]) {
            let le_ns = bucket.get("le_ns").and_then(Json::as_u64).unwrap_or(0);
            let count = bucket.get("count").and_then(Json::as_u64).unwrap_or(0);
            *slot.buckets.entry(le_ns).or_default() += count;
            *local.buckets.entry(le_ns).or_default() += count;
        }
    }
    acc.per_shard.push((shard, mine));
}

/// Render merged fleet metrics in the server's shape: tracked-op order,
/// sparse buckets ascending by bound with the unbounded (`le_ns: 0`) bucket
/// last. A fleet-only `shards` section follows the merged `ops`, giving the
/// per-shard latency skew ([`render_shard_ops`]) in ascending shard order.
fn render_metrics(acc: &MetricsAcc) -> Json {
    let mut ops = Json::obj();
    for &op in TRACKED_OPS {
        let Some(entry) = acc.ops.get(op) else {
            continue;
        };
        if entry.count == 0 {
            continue;
        }
        let mut bounds: Vec<u64> = entry.buckets.keys().copied().collect();
        bounds.sort_unstable_by_key(|&le_ns| if le_ns == 0 { u64::MAX } else { le_ns });
        let buckets = bounds
            .into_iter()
            .map(|le_ns| {
                Json::obj()
                    .with("le_ns", Json::num_u64(le_ns))
                    .with("count", Json::num_u64(entry.buckets[&le_ns]))
            })
            .collect();
        ops = ops.with(
            op,
            Json::obj()
                .with("count", Json::num_u64(entry.count))
                .with("total_ns", Json::num_u64(entry.total_ns))
                .with("buckets", Json::Arr(buckets)),
        );
    }
    let mut members: Vec<&(usize, HashMap<String, OpAcc>)> = acc.per_shard.iter().collect();
    members.sort_unstable_by_key(|(shard, _)| *shard);
    let shards = members
        .into_iter()
        .map(|(shard, ops)| {
            Json::obj()
                .with("shard", Json::num_u64(*shard as u64))
                .with("ops", render_shard_ops(ops))
        })
        .collect();
    Json::obj()
        .with("ops", ops)
        .with("shards", Json::Arr(shards))
}

/// One shard's per-op latency summary inside the fleet `metrics` reply:
/// `{count, total_ns, mean_ns, p99_le_ns}` per recorded op, in tracked-op
/// order. `mean_ns` is the integer mean; `p99_le_ns` is the upper bound of
/// the histogram bucket containing the 99th-percentile observation (`0`
/// meaning it fell in the unbounded overflow bucket). Comparing these
/// across entries is how an operator reads shard latency skew without
/// connecting to each shard.
fn render_shard_ops(ops: &HashMap<String, OpAcc>) -> Json {
    let mut rendered = Json::obj();
    for &op in TRACKED_OPS {
        let Some(entry) = ops.get(op) else {
            continue;
        };
        if entry.count == 0 {
            continue;
        }
        let mut bounds: Vec<u64> = entry.buckets.keys().copied().collect();
        bounds.sort_unstable_by_key(|&le_ns| if le_ns == 0 { u64::MAX } else { le_ns });
        let target = entry.count - entry.count / 100;
        let mut seen = 0u64;
        let mut p99_le_ns = 0u64;
        for le_ns in bounds {
            seen += entry.buckets[&le_ns];
            if seen >= target {
                p99_le_ns = le_ns;
                break;
            }
        }
        rendered = rendered.with(
            op,
            Json::obj()
                .with("count", Json::num_u64(entry.count))
                .with("total_ns", Json::num_u64(entry.total_ns))
                .with("mean_ns", Json::num_u64(entry.total_ns / entry.count))
                .with("p99_le_ns", Json::num_u64(p99_le_ns)),
        );
    }
    rendered
}
