//! # privmech-serve
//!
//! A cached, batched TCP serving layer over
//! [`PrivacyEngine`](privmech_core::PrivacyEngine).
//!
//! The paper's central result (Theorem 1) is what makes a *server* the right
//! shape for this workload: one mechanism is simultaneously optimal for
//! every minimax consumer, so a solve result depends only on the request
//! content — `(kind, n, α, loss, side information)` — and is perfectly
//! shareable across clients. This crate turns that observation into
//! infrastructure:
//!
//! * a **wire protocol**: length-prefixed JSON frames over TCP (see
//!   [`frame`], [`json`], [`proto`] and the prose spec in
//!   `crates/serve/PROTOCOL.md`),
//! * a **multi-threaded request loop** ([`server`]) mapping wire requests
//!   onto [`PrivacyEngine::solve`](privmech_core::PrivacyEngine::solve) /
//!   [`sweep`](privmech_core::PrivacyEngine::sweep) /
//!   [`interact`](privmech_core::PrivacyEngine::interact),
//! * a **sharded LRU response cache** ([`cache`]) keyed on the canonical
//!   request fingerprint
//!   ([`ValidatedRequest::fingerprint`](privmech_core::ValidatedRequest::fingerprint)),
//!   with hit/miss/eviction counters and a runtime-checkable guarantee that
//!   cached responses are byte-identical to uncached solves,
//! * a **blocking client** ([`client`]) with typed helpers mirroring the
//!   engine API.
//!
//! Everything is hand-rolled on `std` — the build environment is offline, so
//! no serde, no tokio (see the workspace shim policy in the root
//! `Cargo.toml`).
//!
//! # Example
//!
//! Spin up an in-process server, solve the paper's flu-report example twice,
//! and watch the second request come back from the cache:
//!
//! ```
//! use privmech_numerics::{rat, Rational};
//! use privmech_serve::client::Client;
//! use privmech_serve::proto::{CacheDisposition, CacheMode, ConsumerSpec, LossSpec};
//! use privmech_serve::server::{self, ServerConfig};
//!
//! let handle = server::spawn(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//!
//! let government = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
//! let first = client.solve(&government, &rat(1, 4), CacheMode::Use).unwrap();
//! let second = client.solve(&government, &rat(1, 4), CacheMode::Use).unwrap();
//!
//! assert_eq!(first.cache, CacheDisposition::Miss);
//! assert_eq!(second.cache, CacheDisposition::Hit);
//! // Byte-identical responses — the cache is invisible to results.
//! assert_eq!(first.raw, second.raw);
//! assert_eq!(first.value.loss, rat(168, 415)); // Table 1(a)
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod frame;
pub mod json;
pub mod proto;
pub mod server;

pub use cache::{CacheStats, ShardedCache};
pub use client::{CacheStatsReply, Client, ClientError, InteractReply, Reply, SolveReply};
pub use json::Json;
pub use proto::{
    CacheDisposition, CacheMode, ConsumerSpec, LossSpec, WireError, WireScalar, PROTOCOL_VERSION,
};
pub use server::{spawn, ServerConfig, ServerHandle};
