//! # privmech-serve
//!
//! A cached, batched TCP serving layer over
//! [`PrivacyEngine`](privmech_core::PrivacyEngine).
//!
//! The paper's central result (Theorem 1) is what makes a *server* the right
//! shape for this workload: one mechanism is simultaneously optimal for
//! every minimax consumer, so a solve result depends only on the request
//! content — `(kind, n, α, loss, side information)` — and is perfectly
//! shareable across clients. This crate turns that observation into
//! infrastructure:
//!
//! * a **wire protocol** (v2: tagged multi-in-flight requests, streaming
//!   sweeps; v1 still accepted per frame): length-prefixed JSON frames over
//!   TCP (see [`frame`], [`json`], [`proto`] and the prose spec in
//!   `crates/serve/PROTOCOL.md`),
//! * a **pipelined request loop** ([`server`]): an epoll-style readiness
//!   loop (hand-rolled bindings, nonblocking sockets, per-connection frame
//!   state machines) feeding a shared worker pool, completions queued back
//!   through a per-connection outbox — possibly out of order, matched by
//!   request `id` — mapping wire requests onto
//!   [`PrivacyEngine::solve`](privmech_core::PrivacyEngine::solve) /
//!   [`sweep_with`](privmech_core::PrivacyEngine::sweep_with) /
//!   [`interact`](privmech_core::PrivacyEngine::interact),
//! * a **sharded LRU response cache** ([`cache`]) keyed on the canonical
//!   request fingerprint
//!   ([`ValidatedRequest::fingerprint`](privmech_core::ValidatedRequest::fingerprint)),
//!   with hit/miss/eviction counters, a runtime-checkable guarantee that
//!   cached responses are byte-identical to uncached solves, optional
//!   cross-process persistence ([`persist`]), and a **negative cache** for
//!   deterministic validation errors with its own counters,
//! * per-op **latency histograms** ([`metrics`], the `metrics` op),
//! * a typed **client** ([`client`]): blocking helpers mirroring the engine
//!   API plus the nonblocking surface —
//!   [`Client::submit`](client::Client::submit) → [`Ticket`],
//!   [`Client::recv`](client::Client::recv), and the [`SweepStream`]
//!   iterator that yields per-α results as the server completes them,
//! * a **fleet tier** ([`ring`], [`router`], the `privmech-router` binary):
//!   N shard processes behind one listen address, each v2 frame forwarded to
//!   the shard chosen by consistent hashing on the canonical request key, so
//!   the cache keyspace partitions with zero cross-shard coordination and
//!   routed responses stay byte-identical to a single process.
//!
//! Everything is hand-rolled on `std` — the build environment is offline, so
//! no serde, no tokio (see the workspace shim policy in the root
//! `Cargo.toml`).
//!
//! # Example
//!
//! Spin up an in-process server, solve the paper's flu-report example twice,
//! and watch the second request come back from the cache:
//!
//! ```
//! use privmech_numerics::{rat, Rational};
//! use privmech_serve::client::Client;
//! use privmech_serve::proto::{CacheDisposition, CacheMode, ConsumerSpec, LossSpec};
//! use privmech_serve::server::{self, ServerConfig};
//!
//! let handle = server::spawn(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//!
//! let government = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
//! let first = client.solve(&government, &rat(1, 4), CacheMode::Use).unwrap();
//! let second = client.solve(&government, &rat(1, 4), CacheMode::Use).unwrap();
//!
//! assert_eq!(first.cache, CacheDisposition::Miss);
//! assert_eq!(second.cache, CacheDisposition::Hit);
//! // Byte-identical responses — the cache is invisible to results.
//! assert_eq!(first.raw, second.raw);
//! assert_eq!(first.value.loss, rat(168, 415)); // Table 1(a)
//! handle.shutdown();
//! ```
//!
//! Pipelined (protocol v2): submit many requests on one connection, then
//! consume completions as they arrive — and stream a sweep's per-α results
//! in completion order:
//!
//! ```
//! use privmech_numerics::{rat, Rational};
//! use privmech_serve::client::Client;
//! use privmech_serve::proto::{CacheMode, ConsumerSpec, LossSpec};
//! use privmech_serve::server::{self, ServerConfig};
//!
//! let handle = server::spawn(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! assert_eq!(client.version(), 2); // negotiated via the hello op
//!
//! // Two solves in flight at once; replies are matched by ticket.
//! let spec = ConsumerSpec::<Rational>::minimax(2, LossSpec::Absolute);
//! let t1 = client.submit_solve(&spec, &rat(1, 4), CacheMode::Use).unwrap();
//! let t2 = client.submit_solve(&spec, &rat(1, 2), CacheMode::Use).unwrap();
//! let second = client.wait(t2).unwrap(); // out-of-order wait is fine
//! let first = client.wait(t1).unwrap();
//! assert!(first.get("result").is_some() && second.get("result").is_some());
//!
//! // A streaming sweep: items arrive as each α finishes, tagged by index.
//! let alphas = vec![rat(1, 5), rat(1, 3), rat(1, 2)];
//! let mut seen = [false; 3];
//! let mut stream = client.sweep_stream(&spec, &alphas, CacheMode::Use).unwrap();
//! for item in stream.by_ref() {
//!     seen[item.unwrap().index] = true;
//! }
//! assert_eq!(stream.done().unwrap().count, 3);
//! assert!(seen.iter().all(|&s| s));
//! handle.shutdown();
//! ```

// `deny` (not `forbid`) so the one FFI module below can opt back in; every
// other module stays safe-only.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod frame;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod proto;
pub(crate) mod readiness;
pub mod ring;
pub mod router;
pub mod server;
#[allow(unsafe_code)]
pub(crate) mod sys;
pub mod zoo;

pub use cache::{CacheStats, ShardedCache};
pub use client::{
    CacheStatsReply, Client, ClientError, Event, InteractReply, Reply, SolveReply, SweepDoneReply,
    SweepItemReply, SweepStream, Ticket,
};
pub use json::Json;
pub use metrics::{LatencyHistogram, Metrics};
pub use proto::{
    CacheDisposition, CacheMode, ConsumerSpec, LossSpec, WireError, WireScalar, PROTOCOL_V1,
    PROTOCOL_VERSION,
};
pub use ring::ShardRing;
pub use router::{RouterConfig, RouterHandle};
pub use server::{spawn, ServerConfig, ServerHandle};
