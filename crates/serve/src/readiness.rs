//! Nonblocking building blocks for the readiness loop: an incremental frame
//! decoder and a buffered outbox.
//!
//! The blocking [`crate::frame`] helpers assume they may park on the socket;
//! an event loop cannot. [`FrameReader`] accumulates whatever bytes a
//! readiness-driven read produced and yields complete frames as they appear;
//! [`Outbox`] queues rendered frames and pumps them out in `WouldBlock`-sized
//! steps. Both preserve the wire format of [`crate::frame`] exactly.

use std::io::{self, Read, Write};

use crate::frame::MAX_FRAME_LEN;

/// How many buffered-but-unsent bytes a connection may accumulate before it
/// is declared dead. A client that stops *reading* while its requests are in
/// flight would otherwise grow its outbox without bound (the readiness loop
/// never blocks on writes, so there is no write timeout to save it); past
/// this cap the connection is torn down instead. Generous enough for a full
/// in-flight window of maximum-size frames not to trip it under ordinary
/// slowness.
pub const MAX_OUTBOX_BYTES: usize = 256 * 1024 * 1024;

/// Incremental decoder for length-prefixed frames: feed it raw socket bytes,
/// take complete frames out.
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReader {
    /// An empty decoder.
    #[must_use]
    pub fn new() -> Self {
        FrameReader {
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Append raw bytes from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: decoded frames leave a dead prefix behind.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Read from `source` (a nonblocking socket) into the decode buffer
    /// until it would block. Returns `Ok(true)` if the peer reached EOF.
    pub fn fill(&mut self, source: &mut impl Read, scratch: &mut [u8]) -> io::Result<bool> {
        loop {
            match source.read(scratch) {
                Ok(0) => return Ok(true),
                Ok(n) => self.extend(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Pop the next complete frame, if one is buffered. An oversized length
    /// prefix is unrecoverable (the stream can never resynchronize) and
    /// errors out, mirroring [`crate::frame::read_frame`].
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let pending = &self.buf[self.pos..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds limit {MAX_FRAME_LEN}"),
            ));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let frame = pending[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(frame))
    }

    /// Whether undecoded bytes remain (a partial frame at EOF means the
    /// stream was truncated mid-frame).
    #[must_use]
    pub fn has_partial(&self) -> bool {
        self.pos < self.buf.len()
    }
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

/// A byte queue of rendered frames awaiting socket writability.
pub struct Outbox {
    buf: Vec<u8>,
    pos: usize,
}

impl Outbox {
    /// An empty outbox.
    #[must_use]
    pub fn new() -> Self {
        Outbox {
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Queue one frame (length prefix + payload). Errors if the payload is
    /// oversized or the outbox would exceed [`MAX_OUTBOX_BYTES`].
    pub fn push_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&len| len as usize <= MAX_FRAME_LEN)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "frame length {} exceeds limit {MAX_FRAME_LEN}",
                        payload.len()
                    ),
                )
            })?;
        if self.len() + 4 + payload.len() > MAX_OUTBOX_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "connection outbox overflow (peer is not reading)",
            ));
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        self.buf.extend_from_slice(&len.to_be_bytes());
        self.buf.extend_from_slice(payload);
        Ok(())
    }

    /// Unsent bytes queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether everything queued has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Write as much as the (nonblocking) sink accepts right now. Returns
    /// whether the outbox is now empty.
    pub fn pump(&mut self, sink: &mut impl Write) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match sink.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.pos += n;
                    if self.pos >= 64 * 1024 && self.pos == self.buf.len() {
                        self.buf.clear();
                        self.pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

impl Default for Outbox {
    fn default() -> Self {
        Outbox::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_reassemble_from_single_bytes() {
        let mut reader = FrameReader::new();
        let payload = b"{\"v\":2}";
        let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(payload);
        for &byte in &wire[..wire.len() - 1] {
            reader.extend(&[byte]);
            assert!(reader.next_frame().unwrap().is_none());
        }
        reader.extend(&wire[wire.len() - 1..]);
        assert_eq!(reader.next_frame().unwrap().unwrap(), payload);
        assert!(!reader.has_partial());
    }

    #[test]
    fn oversized_length_is_fatal() {
        let mut reader = FrameReader::new();
        reader.extend(&u32::MAX.to_be_bytes());
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn outbox_round_trips_frames() {
        let mut outbox = Outbox::new();
        outbox.push_frame(b"hello").unwrap();
        outbox.push_frame(b"world").unwrap();
        let mut sink = Vec::new();
        assert!(outbox.pump(&mut sink).unwrap());
        let mut reader = FrameReader::new();
        reader.extend(&sink);
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"hello");
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"world");
    }
}
