//! Cross-process cache persistence: dump/load the response caches as
//! JSON Lines.
//!
//! The cached ≡ uncached **bit-identity contract** is what makes entries
//! portable: a cache value is the canonical rendering of a deterministic
//! function of its key, so a value written by one server process is exactly
//! the value any future process would compute for that key. Dumping the
//! sharded LRU on shutdown and loading it on startup therefore keeps a
//! restarted server's hot set warm with zero correctness risk — a loaded hit
//! still satisfies `--verify-hits`.
//!
//! Format: one JSON object per line,
//! `{"kind": "result" | "error", "key": "<cache key>", "value": "<rendered JSON>"}`.
//! `result` entries belong to the positive response cache, `error` entries to
//! the negative validation-error cache. Lines are written least recently used
//! first (per shard), so re-inserting them in file order reproduces recency;
//! unreadable lines are skipped with a count, never a crash — a stale or
//! truncated dump degrades to a colder cache, nothing worse.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use crate::cache::ShardedCache;
use crate::json::{self, Json};

/// Outcome of loading a cache file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Entries inserted into the positive response cache.
    pub results: usize,
    /// Entries inserted into the negative validation-error cache.
    pub errors: usize,
    /// Malformed lines skipped.
    pub skipped: usize,
}

/// Dump both caches to `path` (atomically enough for a single writer: the
/// file is truncated and rewritten in place on shutdown).
pub fn dump(
    path: &Path,
    positive: &ShardedCache<Arc<str>>,
    negative: &ShardedCache<Arc<str>>,
) -> io::Result<usize> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut written = 0usize;
    for (kind, cache) in [("result", positive), ("error", negative)] {
        for (key, value) in cache.export_lru_first() {
            let line = Json::obj()
                .with("kind", Json::str(kind))
                .with("key", Json::str(key))
                .with("value", Json::str(value.as_ref()));
            writeln!(w, "{}", json::to_string(&line))?;
            written += 1;
        }
    }
    w.flush()?;
    Ok(written)
}

/// Load a dump produced by [`dump`] into the given caches. A missing file is
/// an empty load, not an error; malformed lines are counted and skipped.
pub fn load(
    path: &Path,
    positive: &ShardedCache<Arc<str>>,
    negative: &ShardedCache<Arc<str>>,
) -> io::Result<LoadReport> {
    let file = match std::fs::File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadReport::default()),
        Err(e) => return Err(e),
    };
    let mut report = LoadReport::default();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match json::parse(&line) {
            Ok(value) => value,
            Err(_) => {
                report.skipped += 1;
                continue;
            }
        };
        let (kind, key, value) = match (
            parsed.get("kind").and_then(Json::as_str),
            parsed.get("key").and_then(Json::as_str),
            parsed.get("value").and_then(Json::as_str),
        ) {
            (Some(kind), Some(key), Some(value)) => (kind, key, value),
            _ => {
                report.skipped += 1;
                continue;
            }
        };
        match kind {
            "result" => {
                positive.insert(key, value.into());
                report.results += 1;
            }
            "error" => {
                negative.insert(key, value.into());
                report.errors += 1;
            }
            _ => report.skipped += 1,
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("privmech-persist-{name}-{}", std::process::id()));
        path
    }

    #[test]
    fn dump_then_load_round_trips_entries_and_recency() {
        let path = tmp_path("roundtrip");
        let positive: ShardedCache<Arc<str>> = ShardedCache::new(4, 1);
        let negative: ShardedCache<Arc<str>> = ShardedCache::new(4, 1);
        positive.insert("solve|a", Arc::from(r#"{"loss":"1/2"}"#));
        positive.insert("solve|b", Arc::from(r#"{"loss":"1/3"}"#));
        let _ = positive.get("solve|a"); // "b" is now LRU
        negative.insert("neg|x", Arc::from(r#"{"code":"invalid_alpha"}"#));

        let written = dump(&path, &positive, &negative).unwrap();
        assert_eq!(written, 3);

        let positive2: ShardedCache<Arc<str>> = ShardedCache::new(4, 1);
        let negative2: ShardedCache<Arc<str>> = ShardedCache::new(4, 1);
        let report = load(&path, &positive2, &negative2).unwrap();
        assert_eq!(report.results, 2);
        assert_eq!(report.errors, 1);
        assert_eq!(report.skipped, 0);
        assert_eq!(
            positive2.get("solve|a").as_deref(),
            Some(r#"{"loss":"1/2"}"#)
        );
        assert_eq!(
            negative2.get("neg|x").as_deref(),
            Some(r#"{"code":"invalid_alpha"}"#)
        );
        // Recency survived: "b" was dumped first (LRU), so after reload "a"
        // is still the more recently used entry.
        assert_eq!(
            positive2.shard_keys_by_recency(0),
            vec!["solve|a", "solve|b"]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_load_and_bad_lines_are_skipped() {
        let path = tmp_path("missing");
        let cache: ShardedCache<Arc<str>> = ShardedCache::new(4, 1);
        let report = load(&path, &cache, &cache).unwrap();
        assert_eq!(report, LoadReport::default());

        std::fs::write(
            &path,
            "not json\n{\"kind\":\"mystery\",\"key\":\"k\",\"value\":\"v\"}\n\
             {\"kind\":\"result\",\"key\":\"ok\",\"value\":\"v\"}\n",
        )
        .unwrap();
        let report = load(&path, &cache, &cache).unwrap();
        assert_eq!(report.results, 1);
        assert_eq!(report.skipped, 2);
        let _ = std::fs::remove_file(&path);
    }
}
