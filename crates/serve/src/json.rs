//! A minimal, dependency-free JSON value with a deterministic serializer.
//!
//! The serving layer needs exactly three properties from its wire format, and
//! this module is built around them:
//!
//! 1. **Lexical number preservation.** [`Json::Num`] stores the *text* of the
//!    number, not a parsed `f64`, so a value survives a parse → serialize
//!    round trip bit for bit. Exact rationals travel as strings anyway, and
//!    `f64` payloads are rendered with Rust's shortest round-tripping `{:?}`
//!    format, so number text equality coincides with IEEE equality.
//! 2. **Deterministic serialization.** Objects keep insertion order
//!    ([`Json::Obj`] is an ordered list of pairs) and the writer has no
//!    configuration, so the same value always renders to the same bytes —
//!    this is what makes "cached response ≡ freshly computed response"
//!    checkable by byte comparison.
//! 3. **Bounded, total parsing.** The recursive-descent parser enforces a
//!    nesting-depth limit and returns positioned errors instead of panicking
//!    on any input.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts before rejecting the document.
pub const MAX_DEPTH: usize = 64;

/// A JSON value. Numbers keep their lexical form; objects keep insertion
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its canonical textual form.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON spliced verbatim into the output.
    ///
    /// The server's cache-hit path stores *rendered* result objects
    /// (`Arc<str>`); this variant lets them be embedded into a response
    /// envelope without re-parsing or deep-cloning a tree. The contained
    /// text must itself be canonical JSON produced by [`to_string`] — the
    /// parser never creates this variant, and field accessors treat it as
    /// opaque.
    Raw(std::sync::Arc<str>),
}

impl Json {
    /// An object builder starting empty.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair (builder style; only meaningful on `Obj`).
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Json {
        if let Json::Obj(pairs) = &mut self {
            pairs.push((key.to_string(), value));
        }
        self
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer number.
    #[must_use]
    pub fn num_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A signed integer number.
    #[must_use]
    pub fn num_i64(v: i64) -> Json {
        Json::Num(v.to_string())
    }

    /// A finite double, rendered with the shortest round-tripping decimal
    /// form. Returns `None` for NaN or infinities, which JSON cannot express.
    #[must_use]
    pub fn num_f64(v: f64) -> Option<Json> {
        if !v.is_finite() {
            return None;
        }
        // Rust's Debug for f64 is the shortest string that parses back to the
        // same bits ("0.25", "1e300", "1.5e-8"), which is also valid JSON.
        Some(Json::Num(format!("{v:?}")))
    }

    /// Object field lookup (first match; `None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is an integral number in range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `usize`, if this is an integral number in range.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The raw lexical text of the number, if this is a number.
    #[must_use]
    pub fn num_text(&self) -> Option<&str> {
        match self {
            Json::Num(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialize a value to its canonical textual form.
#[must_use]
pub fn to_string(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(text) => out.push_str(text),
        Json::Str(s) => write_string(out, s),
        Json::Raw(text) => out.push_str(text),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A positioned parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{text}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting depth limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and we only stopped
                // on ASCII boundaries, so this slice is valid UTF-8 too.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.error("raw control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let c = self.peek().ok_or_else(|| self.error("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: a low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.error("high surrogate not followed by \\u"))?;
                        let lo = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        return Err(self.error("unpaired high surrogate"));
                    }
                } else if (0xdc00..0xe000).contains(&hi) {
                    return Err(self.error("unpaired low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.error("invalid code point"))?);
            }
            _ => return Err(self.error("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("non-hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: "0" or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        Ok(Json::Num(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_preserve_bytes() {
        for doc in [
            "null",
            "true",
            "[1,2.5,-3e10,0.25]",
            r#"{"a":1,"b":[{"c":"x"},null],"d":"\" \\ \n"}"#,
            r#""plain""#,
            "[[[[1]]]]",
        ] {
            let v = parse(doc).unwrap();
            assert_eq!(to_string(&v), doc, "lexical round trip for {doc}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(to_string(&v), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("z").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_round_trip_semantically() {
        let v = parse(r#""a\u0041\t\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\t\u{e9}\u{1f600}"));
        // Re-serialization writes the characters directly (semantic identity).
        let re = parse(&to_string(&v)).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn f64_shortest_form_round_trips() {
        for x in [0.25, 1.0 / 3.0, 1e300, -1.5e-8, 0.1 + 0.2] {
            let j = Json::num_f64(x).unwrap();
            assert_eq!(j.as_f64(), Some(x), "exact bits for {x}");
            let re = parse(&to_string(&j)).unwrap();
            assert_eq!(re.as_f64(), Some(x));
        }
        assert!(Json::num_f64(f64::NAN).is_none());
        assert!(Json::num_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,",
            "01",
            "1.",
            "1e",
            "\"abc",
            "nul",
            "[1] 2",
            "{\"a\"}",
            "+1",
            "\"\\x\"",
            "\"\\ud800\"",
            "\u{1}".trim_start(),
        ] {
            assert!(parse(doc).is_err(), "should reject {doc:?}");
        }
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 2),
            "]".repeat(MAX_DEPTH + 2)
        );
        assert!(parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn raw_splices_verbatim() {
        let inner = parse(r#"{"loss":"168/415","n":3}"#).unwrap();
        let rendered: std::sync::Arc<str> = to_string(&inner).into();
        let envelope = Json::obj()
            .with("ok", Json::Bool(true))
            .with("result", Json::Raw(std::sync::Arc::clone(&rendered)));
        let spliced = to_string(&envelope);
        assert_eq!(spliced, r#"{"ok":true,"result":{"loss":"168/415","n":3}}"#);
        // The splice is indistinguishable from embedding the tree.
        let tree = Json::obj()
            .with("ok", Json::Bool(true))
            .with("result", inner);
        assert_eq!(spliced, to_string(&tree));
    }

    #[test]
    fn builder_helpers() {
        let v = Json::obj()
            .with("op", Json::str("ping"))
            .with("id", Json::num_u64(7))
            .with("neg", Json::num_i64(-3))
            .with("flag", Json::Bool(true));
        assert_eq!(
            to_string(&v),
            r#"{"op":"ping","id":7,"neg":-3,"flag":true}"#
        );
        assert_eq!(v.get("id").and_then(Json::as_usize), Some(7));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("ping"));
    }
}
