//! Length-prefixed framing: each message is a 4-byte big-endian length
//! followed by that many bytes of UTF-8 JSON.
//!
//! The prefix makes message boundaries explicit on a byte stream (no
//! delimiter scanning, binary-safe payloads) and lets the reader reject
//! oversized frames *before* allocating. A clean EOF **between** frames is a
//! normal connection close and is reported as `Ok(None)`; an EOF in the
//! middle of a frame is an error.

use std::io::{self, Read, Write};

/// Upper bound on a frame's payload length. Requests and responses are small
/// (a mechanism for `n = 100` is ~100 KB of JSON); anything near this limit
/// is a protocol error or an attack, not a workload.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Write one frame: `u32` big-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    let len = (payload.len() as u32).to_be_bytes();
    w.write_all(&len)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean EOF at a frame boundary,
/// `Err` on oversized frames or EOF mid-frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // A clean close before any length byte is a normal end of session.
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(mut filled) => {
            while filled < 4 {
                let got = r.read(&mut len_buf[filled..])?;
                if got == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed inside a frame length prefix",
                    ));
                }
                filled += got;
            }
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"{\"x\":1}").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(&b"{\"x\":1}"[..])
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn eof_inside_a_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        for cut in 1..buf.len() {
            let mut r = Cursor::new(&buf[..cut]);
            assert!(read_frame(&mut r).is_err(), "truncated at {cut}");
        }
    }

    #[test]
    fn oversized_declared_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_writes_are_rejected() {
        struct NullSink;
        impl std::io::Write for NullSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Don't materialize 16 MiB: a zero-length claim over a huge slice is
        // enough to exercise the guard via a fake length.
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut NullSink, &big).is_err());
    }
}
