//! The request/response schema shared by the server and the client
//! (protocol majors v1 and v2).
//!
//! The authoritative prose specification lives in `crates/serve/PROTOCOL.md`;
//! this module is its executable form. Keep the two in sync: every schema
//! field or error code added here must be documented there, and vice versa.
//!
//! Design notes:
//!
//! * Requests and responses are single JSON objects, one per frame (see
//!   [`crate::frame`]). The `"v"` field carries the protocol major version;
//!   the server accepts majors [`PROTOCOL_V1`] and [`PROTOCOL_VERSION`]
//!   **per frame** and rejects others with `unsupported_version` (additive
//!   fields do not bump the version — unknown fields are ignored). v2 frames
//!   must carry a client-chosen `"id"`; many may be in flight per connection
//!   and replies are matched by `"id"`, with `sweep` answered as a stream of
//!   `sweep_item` frames plus a terminal `sweep_done`.
//! * Scalars travel in backend-tagged form (the request's `"scalar"` field):
//!   exact rationals as strings (`"5/3"`, also accepting integer and decimal
//!   literals), doubles as JSON numbers in shortest round-tripping form, so
//!   IEEE equality coincides with lexical equality on the wire.

use std::sync::Arc;

use privmech_core::{
    AbsoluteError, ConsumerKind, CoreError, Interaction, Mechanism, PivotStats, Solve,
    SolveRequest, SolveStrategy, SquaredError, TableLoss, ToleranceError, ValidatedRequest,
    ZeroOneError,
};
use privmech_linalg::{Matrix, Scalar};
use privmech_numerics::Rational;

use crate::json::Json;

/// The newest protocol major this build speaks (v2: tagged multi-in-flight
/// requests and streaming sweeps). The server also accepts [`PROTOCOL_V1`]
/// frames — the request's `"v"` field selects, per frame, which reply shape
/// it gets (see `PROTOCOL.md` § Versioning and negotiation).
pub const PROTOCOL_VERSION: u64 = 2;

/// The original strict request/response protocol major, still accepted.
pub const PROTOCOL_V1: u64 = 1;

/// Upper bound on the query-range bound `n` a server accepts over the wire.
///
/// The request itself is tiny (`n` is one integer), so without this guard a
/// 60-byte frame could demand an `(n+1)²` allocation and an astronomically
/// large LP — an attack, not a workload (exact solves are already
/// multi-minute by `n = 16`). Requests beyond the limit are rejected with
/// `bad_request` before anything is allocated.
pub const MAX_WIRE_N: usize = 1024;

/// A schema- or computation-level failure, carried as `{code, message}` in
/// error responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine-readable code (see `PROTOCOL.md` for the full table).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Build an error with a stable code.
    #[must_use]
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }

    /// Schema-level rejection (missing or ill-typed field).
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        WireError::new("bad_request", message)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// Map a [`CoreError`] onto its stable wire code. Field-level validation
/// failures keep distinct codes so clients can react precisely.
#[must_use]
pub fn core_error_code(e: &CoreError) -> &'static str {
    match e {
        CoreError::InvalidAlpha { .. } => "invalid_alpha",
        CoreError::InvalidMechanism { .. } => "invalid_mechanism",
        CoreError::InvalidPostProcessing { .. } => "invalid_post_processing",
        CoreError::NonMonotoneLoss { .. } => "non_monotone_loss",
        CoreError::InvalidSideInformation { .. } => "invalid_side_information",
        CoreError::InvalidPrior { .. } => "invalid_prior",
        CoreError::InvalidPrivacyLevels { .. } => "invalid_privacy_levels",
        CoreError::NotDerivable { .. } => "not_derivable",
        CoreError::InvalidRequest { .. } => "invalid_request",
        CoreError::InputOutOfRange { .. } => "input_out_of_range",
        CoreError::Linalg(_) => "linalg_error",
        CoreError::Lp(_) => "lp_error",
    }
}

impl From<CoreError> for WireError {
    fn from(e: CoreError) -> Self {
        WireError::new(core_error_code(&e), e.to_string())
    }
}

/// Whether a wire code names a **deterministic validation failure** — a
/// [`CoreError`]-mapped rejection that depends only on the request content,
/// never on server state. Exactly these are eligible for negative caching
/// (`lp_error`/`linalg_error` are compute-stage and deliberately excluded).
#[must_use]
pub fn is_validation_code(code: &str) -> bool {
    matches!(
        code,
        "invalid_alpha"
            | "invalid_mechanism"
            | "invalid_post_processing"
            | "non_monotone_loss"
            | "invalid_side_information"
            | "invalid_prior"
            | "invalid_privacy_levels"
            | "not_derivable"
            | "invalid_request"
            | "input_out_of_range"
    )
}

/// Map a wire error code onto its static form (unknown codes collapse to
/// `"internal"`; messages still carry the original text). The table is the
/// full code list of `PROTOCOL.md` § Error codes.
#[must_use]
pub fn intern_code(code: &str) -> &'static str {
    const CODES: &[&str] = &[
        "unsupported_version",
        "malformed_frame",
        "malformed_json",
        "bad_request",
        "unknown_op",
        "unsupported_scalar",
        "invalid_alpha",
        "invalid_mechanism",
        "invalid_post_processing",
        "non_monotone_loss",
        "invalid_side_information",
        "invalid_prior",
        "invalid_privacy_levels",
        "not_derivable",
        "invalid_request",
        "input_out_of_range",
        "linalg_error",
        "lp_error",
        "cache_verify_failed",
        "shard_unavailable",
    ];
    CODES
        .iter()
        .find(|&&c| c == code)
        .copied()
        .unwrap_or("internal")
}

/// The **routing key** of a compute request: the canonical spelling of the
/// parts that determine its response — op, scalar tag, the canonically
/// re-encoded consumer spec, and the op-specific payload — mirroring the
/// server's key-memo keys, so every spelling of a request that would share a
/// memoized cache key also routes to the same shard.
///
/// `None` for non-compute ops, undecodable specs, and missing payload fields
/// — requests whose (error) response doesn't depend on cache state, so the
/// router may send them anywhere. The decode here never *validates* (no loss
/// matrices, no fingerprints): routing costs one parse and one re-render.
#[must_use]
pub fn routing_key(request: &Json) -> Option<String> {
    let op = request.get("op").and_then(Json::as_str)?;
    match request.get("scalar").and_then(Json::as_str) {
        Some("rational") | None => routing_key_for::<Rational>(op, request),
        Some("f64") => routing_key_for::<f64>(op, request),
        Some(_) => None,
    }
}

fn routing_key_for<T: WireScalar>(op: &str, request: &Json) -> Option<String> {
    // Dispatch on the op *first*: zoo requests carry no top-level consumer
    // spec, so decoding one unconditionally would mis-route them all to the
    // "anywhere" bucket.
    match op {
        "solve" | "sweep" | "interact" => {
            let spec = ConsumerSpec::<T>::from_wire(request).ok()?;
            let spec_canonical = crate::json::to_string(&spec.encode_onto(Json::obj()));
            let extra = match op {
                "solve" => crate::json::to_string(&T::from_wire(request.get("alpha")?)?.to_wire()),
                "sweep" => {
                    crate::json::to_string(&Json::Arr(request.get("alphas")?.as_arr()?.to_vec()))
                }
                _ => crate::json::to_string(request.get("mechanism")?),
            };
            Some(format!("{op}|{}|{spec_canonical}|{extra}", T::TAG))
        }
        "zoo_eval" | "zoo_table" => {
            let parsed = crate::zoo::ZooRequest::<T>::from_wire(op, request).ok()?;
            Some(format!("{op}|{}|{}", T::TAG, parsed.canonical()))
        }
        _ => None,
    }
}

/// A scalar backend that can travel over the wire.
pub trait WireScalar: Scalar + Send + Sync {
    /// The request `"scalar"` tag selecting this backend.
    const TAG: &'static str;

    /// Encode one value.
    fn to_wire(&self) -> Json;

    /// Decode one value; `None` on type or syntax mismatch.
    fn from_wire(value: &Json) -> Option<Self>;

    /// Append the rendering of [`WireScalar::to_wire`] directly onto `out`
    /// — byte-identical to `json::to_string(&self.to_wire())`, without
    /// building the tree node. The direct result renderers
    /// ([`render_solve`], [`render_interaction`], the zoo renderers) are
    /// built on this, which is what keeps large-matrix miss paths from
    /// allocating one `Json` node per cell (asserted against the tree
    /// oracles in this module's tests).
    fn render_onto(&self, out: &mut String);
}

impl WireScalar for Rational {
    const TAG: &'static str = "rational";

    fn to_wire(&self) -> Json {
        Json::Str(self.to_string())
    }

    fn from_wire(value: &Json) -> Option<Self> {
        // Strings are the canonical form ("5/3"); integer and decimal JSON
        // numbers are accepted for convenience and converted exactly.
        let text = value.as_str().or_else(|| value.num_text())?;
        text.parse().ok()
    }

    fn render_onto(&self, out: &mut String) {
        use std::fmt::Write as _;
        // The Display form is digits, '-' and '/' — nothing the JSON string
        // escaper would touch, so quoting it verbatim matches the tree path.
        let _ = write!(out, "\"{self}\"");
    }
}

impl WireScalar for f64 {
    const TAG: &'static str = "f64";

    fn to_wire(&self) -> Json {
        Json::num_f64(*self).unwrap_or(Json::Null)
    }

    fn from_wire(value: &Json) -> Option<Self> {
        let v = value.as_f64()?;
        v.is_finite().then_some(v)
    }

    fn render_onto(&self, out: &mut String) {
        use std::fmt::Write as _;
        if self.is_finite() {
            // Debug is the shortest round-tripping decimal — the same text
            // `Json::num_f64` stores.
            let _ = write!(out, "{self:?}");
        } else {
            out.push_str("null");
        }
    }
}

/// The loss-function part of a wire request.
#[derive(Debug, Clone, PartialEq)]
pub enum LossSpec<T: Scalar> {
    /// Mean absolute error `|i - r|`.
    Absolute,
    /// Squared error `(i - r)²`.
    Squared,
    /// 0/1 error `[i ≠ r]`.
    ZeroOne,
    /// Hinge loss, free within `width` units.
    Tolerance(usize),
    /// An explicit `(n+1) × (n+1)` table (validated for monotonicity
    /// server-side).
    Table(Vec<Vec<T>>),
}

impl<T: WireScalar> LossSpec<T> {
    /// Encode as the request's `"loss"` field.
    #[must_use]
    pub fn to_wire(&self) -> Json {
        match self {
            LossSpec::Absolute => Json::str("absolute"),
            LossSpec::Squared => Json::str("squared"),
            LossSpec::ZeroOne => Json::str("zero-one"),
            LossSpec::Tolerance(width) => Json::obj()
                .with("kind", Json::str("tolerance"))
                .with("width", Json::num_u64(*width as u64)),
            LossSpec::Table(rows) => Json::obj().with("kind", Json::str("table")).with(
                "rows",
                Json::Arr(
                    rows.iter()
                        .map(|row| Json::Arr(row.iter().map(WireScalar::to_wire).collect()))
                        .collect(),
                ),
            ),
        }
    }

    /// Build the typed loss function. Table losses are validated for shape
    /// here; monotonicity is checked wherever the loss is consumed (core
    /// request validation, or the zoo's explicit `validate_monotone` pass).
    pub fn to_loss(
        &self,
    ) -> Result<Arc<dyn privmech_core::LossFunction<T> + Send + Sync>, WireError> {
        Ok(match self {
            LossSpec::Absolute => Arc::new(AbsoluteError),
            LossSpec::Squared => Arc::new(SquaredError),
            LossSpec::ZeroOne => Arc::new(ZeroOneError),
            LossSpec::Tolerance(width) => Arc::new(ToleranceError { width: *width }),
            LossSpec::Table(rows) => {
                let matrix = Matrix::from_rows(rows.clone())
                    .map_err(|e| WireError::from(CoreError::from(e)))?;
                Arc::new(TableLoss::new(matrix, "wire-table").map_err(WireError::from)?)
            }
        })
    }

    /// Decode the request's `"loss"` field.
    pub fn from_wire(value: &Json) -> Result<Self, WireError> {
        if let Some(name) = value.as_str() {
            return match name {
                "absolute" => Ok(LossSpec::Absolute),
                "squared" => Ok(LossSpec::Squared),
                "zero-one" => Ok(LossSpec::ZeroOne),
                other => Err(WireError::bad_request(format!("unknown loss \"{other}\""))),
            };
        }
        match value.get("kind").and_then(Json::as_str) {
            Some("tolerance") => {
                let width = value
                    .get("width")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| WireError::bad_request("tolerance loss needs a width"))?;
                Ok(LossSpec::Tolerance(width))
            }
            Some("table") => {
                let rows = value
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| WireError::bad_request("table loss needs rows"))?;
                let mut table = Vec::with_capacity(rows.len());
                for row in rows {
                    let cells = row
                        .as_arr()
                        .ok_or_else(|| WireError::bad_request("table rows must be arrays"))?;
                    let mut out = Vec::with_capacity(cells.len());
                    for cell in cells {
                        out.push(T::from_wire(cell).ok_or_else(|| {
                            WireError::bad_request("unparsable scalar in loss table")
                        })?);
                    }
                    table.push(out);
                }
                Ok(LossSpec::Table(table))
            }
            _ => Err(WireError::bad_request(
                "loss must be a builtin name or {kind: tolerance|table, ...}",
            )),
        }
    }
}

/// The consumer part of a wire request: everything except the privacy
/// level(s), matching the shareable content of a solve (one cache entry
/// serves every consumer with the same spec and α).
#[derive(Debug, Clone)]
pub struct ConsumerSpec<T: Scalar> {
    /// Minimax or Bayesian.
    pub kind: ConsumerKind,
    /// Query-range bound `n`.
    pub n: usize,
    /// Minimax side information (`None` = full `{0, …, n}`).
    pub support: Option<Vec<usize>>,
    /// Bayesian prior over `{0, …, n}`.
    pub prior: Option<Vec<T>>,
    /// The loss function.
    pub loss: LossSpec<T>,
    /// Solve strategy (ignored by `interact`).
    pub strategy: SolveStrategy,
}

impl<T: WireScalar> ConsumerSpec<T> {
    /// A minimax spec with full side information and the default strategy.
    #[must_use]
    pub fn minimax(n: usize, loss: LossSpec<T>) -> Self {
        ConsumerSpec {
            kind: ConsumerKind::Minimax,
            n,
            support: None,
            prior: None,
            loss,
            strategy: SolveStrategy::default(),
        }
    }

    /// A Bayesian spec (`n` is inferred from the prior length).
    #[must_use]
    pub fn bayesian(prior: Vec<T>, loss: LossSpec<T>) -> Self {
        ConsumerSpec {
            kind: ConsumerKind::Bayesian,
            n: prior.len().saturating_sub(1),
            support: None,
            prior: Some(prior),
            loss,
            strategy: SolveStrategy::default(),
        }
    }

    /// Restrict a minimax spec's side information.
    #[must_use]
    pub fn with_support(mut self, support: Vec<usize>) -> Self {
        self.support = Some(support);
        self
    }

    /// Select the solve strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: SolveStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Append this spec's fields onto a request object.
    #[must_use]
    pub fn encode_onto(&self, mut obj: Json) -> Json {
        obj = obj.with(
            "kind",
            Json::str(match self.kind {
                ConsumerKind::Minimax => "minimax",
                ConsumerKind::Bayesian => "bayesian",
            }),
        );
        obj = obj.with("n", Json::num_u64(self.n as u64));
        if let Some(support) = &self.support {
            obj = obj.with(
                "support",
                Json::Arr(support.iter().map(|&m| Json::num_u64(m as u64)).collect()),
            );
        }
        if let Some(prior) = &self.prior {
            obj = obj.with(
                "prior",
                Json::Arr(prior.iter().map(WireScalar::to_wire).collect()),
            );
        }
        obj = obj.with("loss", self.loss.to_wire());
        obj.with(
            "strategy",
            Json::str(match self.strategy {
                SolveStrategy::GeometricFactorization => "factorization",
                SolveStrategy::DirectLp => "direct",
            }),
        )
    }

    /// Decode a spec from a request object.
    pub fn from_wire(obj: &Json) -> Result<Self, WireError> {
        let kind = match obj.get("kind").and_then(Json::as_str) {
            Some("minimax") | None => ConsumerKind::Minimax,
            Some("bayesian") => ConsumerKind::Bayesian,
            Some(other) => {
                return Err(WireError::bad_request(format!(
                    "unknown consumer kind \"{other}\""
                )))
            }
        };
        let prior = match obj.get("prior") {
            Some(value) => {
                let cells = value
                    .as_arr()
                    .ok_or_else(|| WireError::bad_request("prior must be an array"))?;
                let mut out = Vec::with_capacity(cells.len());
                for cell in cells {
                    out.push(
                        T::from_wire(cell)
                            .ok_or_else(|| WireError::bad_request("unparsable scalar in prior"))?,
                    );
                }
                Some(out)
            }
            None => None,
        };
        let n = match (obj.get("n").and_then(Json::as_usize), &prior) {
            (Some(n), _) => n,
            (None, Some(p)) if !p.is_empty() => p.len() - 1,
            _ => return Err(WireError::bad_request("request needs an integer n")),
        };
        if n > MAX_WIRE_N {
            return Err(WireError::bad_request(format!(
                "n = {n} exceeds the serving limit of {MAX_WIRE_N}"
            )));
        }
        let support = match obj.get("support") {
            Some(value) => {
                let cells = value
                    .as_arr()
                    .ok_or_else(|| WireError::bad_request("support must be an array"))?;
                let mut out = Vec::with_capacity(cells.len());
                for cell in cells {
                    out.push(cell.as_usize().ok_or_else(|| {
                        WireError::bad_request("support members must be non-negative integers")
                    })?);
                }
                Some(out)
            }
            None => None,
        };
        let loss = LossSpec::from_wire(
            obj.get("loss")
                .ok_or_else(|| WireError::bad_request("request needs a loss"))?,
        )?;
        let strategy = match obj.get("strategy").and_then(Json::as_str) {
            Some("factorization") | None => SolveStrategy::GeometricFactorization,
            Some("direct") => SolveStrategy::DirectLp,
            Some(other) => {
                return Err(WireError::bad_request(format!(
                    "unknown strategy \"{other}\""
                )))
            }
        };
        Ok(ConsumerSpec {
            kind,
            n,
            support,
            prior,
            loss,
            strategy,
        })
    }

    /// Build the typed core request at a privacy level. All consumer-level
    /// validation (monotone loss, support bounds, stochastic prior) happens
    /// here, inside [`SolveRequest::validate`].
    pub fn to_request(&self, alpha: T) -> Result<ValidatedRequest<T>, WireError> {
        let loss = self.loss.to_loss()?;
        let builder = match self.kind {
            ConsumerKind::Minimax => {
                let members = self
                    .support
                    .clone()
                    .unwrap_or_else(|| (0..=self.n).collect());
                SolveRequest::minimax().support(self.n, members)
            }
            ConsumerKind::Bayesian => {
                let prior = self
                    .prior
                    .clone()
                    .ok_or_else(|| WireError::bad_request("bayesian request needs a prior"))?;
                SolveRequest::bayesian().prior(prior)
            }
        };
        builder
            .name("wire")
            .loss(loss)
            .privacy_level(alpha)
            .strategy(self.strategy)
            .validate()
            .map_err(WireError::from)
    }
}

/// Whether a request may be answered from (and recorded into) the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Normal operation: answer from the cache when possible, record misses.
    #[default]
    Use,
    /// Compute fresh and leave the cache untouched (used by clients checking
    /// the cached ≡ uncached bit-identity contract).
    Bypass,
}

impl CacheMode {
    /// Encode as the request's `"cache"` field value.
    #[must_use]
    pub fn as_wire(self) -> &'static str {
        match self {
            CacheMode::Use => "use",
            CacheMode::Bypass => "bypass",
        }
    }

    /// Decode the request's `"cache"` field (absent = `Use`).
    pub fn from_wire(obj: &Json) -> Result<Self, WireError> {
        match obj.get("cache").and_then(Json::as_str) {
            None | Some("use") => Ok(CacheMode::Use),
            Some("bypass") => Ok(CacheMode::Bypass),
            Some(other) => Err(WireError::bad_request(format!(
                "unknown cache mode \"{other}\""
            ))),
        }
    }
}

/// How the server answered: from the cache, by solving, or with the cache
/// bypassed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Served from the response cache.
    Hit,
    /// Solved and recorded into the cache.
    Miss,
    /// Solved fresh with the cache bypassed on request.
    Bypass,
}

impl CacheDisposition {
    /// Encode as the response's `"cache"` field value.
    #[must_use]
    pub fn as_wire(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Bypass => "bypass",
        }
    }

    /// Decode the response's `"cache"` field.
    #[must_use]
    pub fn from_wire(value: &Json) -> Option<Self> {
        match value.as_str()? {
            "hit" => Some(CacheDisposition::Hit),
            "miss" => Some(CacheDisposition::Miss),
            "bypass" => Some(CacheDisposition::Bypass),
            _ => None,
        }
    }
}

/// Assemble the monolithic sweep rendering `{"solves":[...]}` from per-item
/// result renderings in input order — the **one** definition of that shape,
/// shared by the server (cache-entry assembly from a streamed miss), the
/// client (reassembling a v2 stream into a v1-byte-identical `raw`) and the
/// bench harness (the independently hand-rolled copies in
/// `tests/pipeline.rs` / `examples/pipelining.rs` stay as oracles).
#[must_use]
pub fn assemble_solves<'a>(items: impl IntoIterator<Item = &'a str>) -> String {
    let mut out = String::from("{\"solves\":[");
    for (k, item) in items.into_iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push_str("]}");
    out
}

/// Split a monolithic sweep rendering `{"solves":[...]}` back into the
/// renderings of its items, in order — the lexical inverse of
/// [`assemble_solves`]. The server replays cached sweeps as v2 streams
/// through this instead of a full tree parse: each returned slice is
/// byte-identical to the item rendering originally assembled, so a replayed
/// `sweep_item` costs a slice copy rather than a parse, a tree clone and a
/// re-render. Returns `None` when the input is not of the assembled shape
/// (wrong envelope, unbalanced nesting, or an unterminated string).
#[must_use]
pub fn split_solves(monolithic: &str) -> Option<Vec<&str>> {
    let inner = monolithic
        .strip_prefix("{\"solves\":[")?
        .strip_suffix("]}")?;
    if inner.is_empty() {
        return Some(Vec::new());
    }
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut item_start = 0usize;
    for (i, &b) in inner.as_bytes().iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth = depth.checked_sub(1)?,
            b',' if depth == 0 => {
                items.push(&inner[item_start..i]);
                item_start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        return None;
    }
    items.push(&inner[item_start..]);
    Some(items)
}

/// Encode [`PivotStats`] as a response object.
///
/// The devex and dual-simplex counters are emitted **only when nonzero**:
/// they can only be nonzero under non-default solver options (which carry a
/// different request fingerprint), so every default-path response keeps the
/// exact byte shape it had before those counters existed — cache entries
/// persisted by older servers still verify byte-for-byte.
#[must_use]
pub fn stats_to_wire(stats: &PivotStats) -> Json {
    let mut json = Json::obj()
        .with("phase1_pivots", Json::num_u64(stats.phase1_pivots as u64))
        .with("phase2_pivots", Json::num_u64(stats.phase2_pivots as u64))
        .with(
            "degenerate_pivots",
            Json::num_u64(stats.degenerate_pivots as u64),
        )
        .with("dantzig_pivots", Json::num_u64(stats.dantzig_pivots as u64));
    if stats.devex_pivots > 0 {
        json = json.with("devex_pivots", Json::num_u64(stats.devex_pivots as u64));
    }
    json = json.with("bland_pivots", Json::num_u64(stats.bland_pivots as u64));
    if stats.dual_pivots > 0 {
        json = json.with("dual_pivots", Json::num_u64(stats.dual_pivots as u64));
    }
    json.with(
        "fallback_activations",
        Json::num_u64(stats.fallback_activations as u64),
    )
}

/// Decode a response stats object (the optional counters of
/// [`stats_to_wire`] default to zero when absent).
#[must_use]
pub fn stats_from_wire(value: &Json) -> Option<PivotStats> {
    Some(PivotStats {
        phase1_pivots: value.get("phase1_pivots")?.as_usize()?,
        phase2_pivots: value.get("phase2_pivots")?.as_usize()?,
        degenerate_pivots: value.get("degenerate_pivots")?.as_usize()?,
        dantzig_pivots: value.get("dantzig_pivots")?.as_usize()?,
        devex_pivots: value
            .get("devex_pivots")
            .and_then(Json::as_usize)
            .unwrap_or(0),
        bland_pivots: value.get("bland_pivots")?.as_usize()?,
        dual_pivots: value
            .get("dual_pivots")
            .and_then(Json::as_usize)
            .unwrap_or(0),
        fallback_activations: value.get("fallback_activations")?.as_usize()?,
    })
}

/// Encode a row-stochastic matrix (mechanism or post-processing) as nested
/// arrays.
#[must_use]
pub fn matrix_to_wire<T: WireScalar>(matrix: &Matrix<T>) -> Json {
    Json::Arr(
        matrix
            .row_iter()
            .map(|row| Json::Arr(row.iter().map(WireScalar::to_wire).collect()))
            .collect(),
    )
}

/// Append the rendering of [`matrix_to_wire`] directly onto `out` —
/// byte-identical to `json::to_string(&matrix_to_wire(matrix))` without the
/// per-cell `Json` nodes.
pub fn render_matrix_onto<T: WireScalar>(out: &mut String, matrix: &Matrix<T>) {
    out.push('[');
    for (i, row) in matrix.row_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (r, cell) in row.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            cell.render_onto(out);
        }
        out.push(']');
    }
    out.push(']');
}

/// Encode a [`Solve`] as the `solve` op's `result` object — the **tree
/// oracle** for [`render_solve`], kept for tests and decoding symmetry.
#[must_use]
pub fn solve_to_wire<T: WireScalar>(solve: &Solve<T>) -> Json {
    Json::obj()
        .with("alpha", solve.level.alpha().to_wire())
        .with("loss", solve.loss.to_wire())
        .with("mechanism", matrix_to_wire(solve.mechanism.matrix()))
        .with("stats", stats_to_wire(&solve.stats))
}

/// Encode an [`Interaction`] as the `interact` op's `result` object — the
/// **tree oracle** for [`render_interaction`].
#[must_use]
pub fn interaction_to_wire<T: WireScalar>(interaction: &Interaction<T>) -> Json {
    Json::obj()
        .with("loss", interaction.loss.to_wire())
        .with(
            "post_processing",
            matrix_to_wire(&interaction.post_processing),
        )
        .with("induced", matrix_to_wire(interaction.induced.matrix()))
        .with("stats", stats_to_wire(&interaction.lp_stats))
}

/// Render a solve result **once**, straight into a `String` — byte-identical
/// to `json::to_string(&solve_to_wire(solve))` (asserted in tests) but
/// without materializing the `(n+1)²`-node mechanism tree. This is the
/// server's miss path: the returned string becomes the cache entry *and* the
/// bytes spliced into the wire envelope, so large mechanisms are rendered
/// exactly one time.
#[must_use]
pub fn render_solve<T: WireScalar>(solve: &Solve<T>) -> String {
    let mut out = String::from("{\"alpha\":");
    solve.level.alpha().render_onto(&mut out);
    out.push_str(",\"loss\":");
    solve.loss.render_onto(&mut out);
    out.push_str(",\"mechanism\":");
    render_matrix_onto(&mut out, solve.mechanism.matrix());
    out.push_str(",\"stats\":");
    out.push_str(&crate::json::to_string(&stats_to_wire(&solve.stats)));
    out.push('}');
    out
}

/// Render an interact result once, straight into a `String` — byte-identical
/// to `json::to_string(&interaction_to_wire(interaction))`; see
/// [`render_solve`].
#[must_use]
pub fn render_interaction<T: WireScalar>(interaction: &Interaction<T>) -> String {
    let mut out = String::from("{\"loss\":");
    interaction.loss.render_onto(&mut out);
    out.push_str(",\"post_processing\":");
    render_matrix_onto(&mut out, &interaction.post_processing);
    out.push_str(",\"induced\":");
    render_matrix_onto(&mut out, interaction.induced.matrix());
    out.push_str(",\"stats\":");
    out.push_str(&crate::json::to_string(&stats_to_wire(
        &interaction.lp_stats,
    )));
    out.push('}');
    out
}

/// Decode nested arrays into rows of scalars.
pub fn rows_from_wire<T: WireScalar>(value: &Json) -> Result<Vec<Vec<T>>, WireError> {
    let rows = value
        .as_arr()
        .ok_or_else(|| WireError::bad_request("matrix must be an array of arrays"))?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let cells = row
            .as_arr()
            .ok_or_else(|| WireError::bad_request("matrix rows must be arrays"))?;
        let mut r = Vec::with_capacity(cells.len());
        for cell in cells {
            r.push(
                T::from_wire(cell)
                    .ok_or_else(|| WireError::bad_request("unparsable scalar in matrix"))?,
            );
        }
        out.push(r);
    }
    Ok(out)
}

/// Decode a wire matrix into a validated [`Mechanism`].
pub fn mechanism_from_wire<T: WireScalar>(value: &Json) -> Result<Mechanism<T>, WireError> {
    Mechanism::from_rows(rows_from_wire(value)?).map_err(WireError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privmech_numerics::rat;

    #[test]
    fn split_solves_inverts_assemble_solves() {
        // Items with nested arrays/objects, commas inside strings, and
        // escaped quotes — everything the depth/string tracker must survive.
        let items = [
            r#"{"alpha":{"num":1,"den":3},"mechanism":[[1,0],[0,1]],"stats":{"pivots":2}}"#,
            r#"{"note":"a,b],} \" tricky","stats":{"pivots":0}}"#,
            r#"{"loss":"absolute","stats":{"pivots":7}}"#,
        ];
        let monolithic = assemble_solves(items.iter().copied());
        let split = split_solves(&monolithic).expect("assembled shape");
        assert_eq!(split, items);

        assert_eq!(
            split_solves("{\"solves\":[]}").expect("empty sweep"),
            Vec::<&str>::new()
        );
        let single = assemble_solves(std::iter::once(items[0]));
        assert_eq!(split_solves(&single).expect("single"), vec![items[0]]);

        // Non-assembled shapes are rejected, not mis-split.
        assert!(split_solves("{\"other\":[]}").is_none());
        assert!(split_solves("{\"solves\":[{]}").is_none());
        assert!(split_solves("{\"solves\":[\"unterminated]}").is_none());
    }

    #[test]
    fn rational_wire_round_trip() {
        for r in [rat(5, 3), rat(-7, 2), rat(0, 1), rat(4, 1)] {
            assert_eq!(Rational::from_wire(&r.to_wire()), Some(r));
        }
        // Decimal and integer literals are accepted on input.
        assert_eq!(
            Rational::from_wire(&Json::Num("0.25".into())),
            Some(rat(1, 4))
        );
        assert_eq!(Rational::from_wire(&Json::Num("3".into())), Some(rat(3, 1)));
        assert_eq!(Rational::from_wire(&Json::Str("1/0".into())), None);
        assert_eq!(Rational::from_wire(&Json::Bool(true)), None);
    }

    #[test]
    fn f64_wire_round_trip_is_bit_exact() {
        for x in [0.25f64, 1.0 / 3.0, -1.5e-8, 1e300] {
            let decoded = f64::from_wire(&x.to_wire()).unwrap();
            assert_eq!(decoded.to_bits(), x.to_bits());
        }
        assert_eq!(f64::from_wire(&Json::Str("nope".into())), None);
    }

    #[test]
    fn loss_spec_round_trips() {
        let specs: Vec<LossSpec<Rational>> = vec![
            LossSpec::Absolute,
            LossSpec::Squared,
            LossSpec::ZeroOne,
            LossSpec::Tolerance(2),
            LossSpec::Table(vec![vec![rat(0, 1), rat(1, 2)], vec![rat(1, 1), rat(0, 1)]]),
        ];
        for spec in specs {
            let decoded = LossSpec::<Rational>::from_wire(&spec.to_wire()).unwrap();
            assert_eq!(decoded, spec);
        }
        assert!(LossSpec::<Rational>::from_wire(&Json::str("nope")).is_err());
    }

    #[test]
    fn consumer_spec_round_trips_and_validates() {
        let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute)
            .with_support(vec![1, 2, 3])
            .with_strategy(SolveStrategy::DirectLp);
        let encoded = spec.encode_onto(Json::obj());
        let decoded = ConsumerSpec::<Rational>::from_wire(&encoded).unwrap();
        assert_eq!(decoded.n, 3);
        assert_eq!(decoded.support.as_deref(), Some(&[1usize, 2, 3][..]));
        assert_eq!(decoded.strategy, SolveStrategy::DirectLp);
        let request = decoded.to_request(rat(1, 4)).unwrap();
        assert_eq!(request.n(), 3);

        // Core validation failures surface with their field-level codes.
        let bad = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute).with_support(vec![9]);
        let err = bad.to_request(rat(1, 4)).unwrap_err();
        assert_eq!(err.code, "invalid_side_information");
        let err = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute)
            .to_request(rat(3, 2))
            .unwrap_err();
        assert_eq!(err.code, "invalid_alpha");
    }

    #[test]
    fn oversized_n_is_rejected_before_allocation() {
        let request = Json::obj()
            .with("n", Json::Num("4000000000".into()))
            .with("loss", Json::str("absolute"));
        let err = ConsumerSpec::<Rational>::from_wire(&request).unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert!(err.message.contains("serving limit"));
        // The boundary itself is accepted at decode time.
        let request = Json::obj()
            .with("n", Json::num_u64(MAX_WIRE_N as u64))
            .with("loss", Json::str("absolute"));
        assert!(ConsumerSpec::<Rational>::from_wire(&request).is_ok());
    }

    #[test]
    fn mechanism_wire_round_trip() {
        let m = Mechanism::<Rational>::uniform(2);
        let decoded = mechanism_from_wire::<Rational>(&matrix_to_wire(m.matrix())).unwrap();
        assert_eq!(decoded, m);
        // Non-stochastic matrices are rejected with the core's code.
        let bad = Json::Arr(vec![Json::Arr(vec![
            Json::Num("1".into()),
            Json::Num("1".into()),
        ])]);
        assert!(mechanism_from_wire::<Rational>(&bad).is_err());
    }

    #[test]
    fn scalar_render_onto_matches_tree_rendering() {
        for r in [rat(5, 3), rat(-7, 2), rat(0, 1), rat(168, 415)] {
            let mut direct = String::new();
            r.render_onto(&mut direct);
            assert_eq!(direct, crate::json::to_string(&r.to_wire()));
        }
        for x in [0.25f64, 1.0 / 3.0, -1.5e-8, 1e300, f64::NAN, f64::INFINITY] {
            let mut direct = String::new();
            x.render_onto(&mut direct);
            assert_eq!(direct, crate::json::to_string(&x.to_wire()));
        }
    }

    #[test]
    fn direct_renderers_match_the_tree_oracles() {
        // The render-once miss path must be invisible on the wire: the
        // direct string renderers and the tree oracles agree byte for byte,
        // for both scalar backends.
        let engine = privmech_core::PrivacyEngine::with_threads(1);

        let spec = ConsumerSpec::<Rational>::minimax(3, LossSpec::Absolute);
        let validated = spec.to_request(rat(1, 4)).unwrap();
        let solve = engine.solve(&validated).unwrap();
        assert_eq!(
            render_solve(&solve),
            crate::json::to_string(&solve_to_wire(&solve))
        );
        let interaction = engine.interact(&solve.mechanism, &validated).unwrap();
        assert_eq!(
            render_interaction(&interaction),
            crate::json::to_string(&interaction_to_wire(&interaction))
        );

        let spec = ConsumerSpec::<f64>::minimax(4, LossSpec::Squared);
        let validated = spec.to_request(1.0 / 3.0).unwrap();
        let solve = engine.solve(&validated).unwrap();
        assert_eq!(
            render_solve(&solve),
            crate::json::to_string(&solve_to_wire(&solve))
        );
        let interaction = engine.interact(&solve.mechanism, &validated).unwrap();
        assert_eq!(
            render_interaction(&interaction),
            crate::json::to_string(&interaction_to_wire(&interaction))
        );
    }

    #[test]
    fn stats_wire_round_trip() {
        let stats = PivotStats {
            phase1_pivots: 3,
            phase2_pivots: 5,
            degenerate_pivots: 1,
            dantzig_pivots: 7,
            devex_pivots: 0,
            bland_pivots: 1,
            dual_pivots: 0,
            fallback_activations: 1,
        };
        assert_eq!(stats_from_wire(&stats_to_wire(&stats)), Some(stats));
        // The zero-valued optional counters stay off the wire, so default
        // solves keep the pre-existing byte shape (old cache entries still
        // verify); nonzero values round-trip.
        let encoded = crate::json::to_string(&stats_to_wire(&stats));
        assert!(!encoded.contains("devex_pivots"));
        assert!(!encoded.contains("dual_pivots"));
        let nonzero = PivotStats {
            devex_pivots: 4,
            dual_pivots: 2,
            ..stats
        };
        assert_eq!(stats_from_wire(&stats_to_wire(&nonzero)), Some(nonzero));
    }
}
