//! Consistent hashing for the fleet tier: a fixed ring of virtual nodes
//! mapping canonical request keys to shard indices.
//!
//! The paper's mechanisms are deterministic functions of the request, so a
//! shard that owns a key owns *every* occurrence of it — sharding partitions
//! the cache keyspace with zero cross-shard coordination, and each shard's
//! LRU stays hot on exactly its slice of the corpus. The ring hashes stable
//! shard **indices** (not addresses), so ownership survives shard restarts
//! on fresh ephemeral ports, and adding a shard to a ring of N only moves
//! the keys whose ring successor the new shard's virtual nodes capture —
//! about 1/(N+1) of the keyspace (see `tests/ring.rs`).

use privmech_core::fingerprint::fnv1a;

/// Finalizing avalanche (SplitMix64's mixer) applied on top of FNV-1a.
///
/// FNV-1a is a fine byte-stream hash for table bucketing, but its *high*
/// bits mix poorly — and ring placement is an order statistic on the full
/// 64-bit value, so weak high bits cluster virtual nodes and skew ownership
/// shares badly (observed >2x from uniform at 64 vnodes). One multiply-xor
/// finalizer restores avalanche; it is applied identically to vnode points
/// and key lookups, so it is just a change of hash function, not of scheme.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut z = fnv1a(bytes);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Virtual nodes per shard. Enough to keep ownership shares within a few
/// percent of uniform at fleet sizes this repo targets (≤ dozens of shards).
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring over `shards` shard indices.
///
/// Construction is deterministic: the same `(shards, vnodes)` always builds
/// the identical ring, so every router replica — and every restart — agrees
/// on ownership without coordination.
#[derive(Debug, Clone)]
pub struct ShardRing {
    /// `(point, shard)` sorted by point; lookup is the successor point.
    points: Vec<(u64, usize)>,
    shards: usize,
    vnodes: usize,
}

impl ShardRing {
    /// Build the ring for `shards` shards with `vnodes` virtual nodes each.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `vnodes` is zero — an empty ring can own
    /// nothing.
    #[must_use]
    pub fn new(shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one virtual node");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                let point = ring_hash(format!("shard|{shard}|vnode|{vnode}").as_bytes());
                points.push((point, shard));
            }
        }
        // Sorting by (point, shard) makes collisions (astronomically rare
        // with 64-bit points, but possible) resolve deterministically.
        points.sort_unstable();
        ShardRing {
            points,
            shards,
            vnodes,
        }
    }

    /// The ring with [`DEFAULT_VNODES`] virtual nodes per shard.
    #[must_use]
    pub fn with_default_vnodes(shards: usize) -> Self {
        ShardRing::new(shards, DEFAULT_VNODES)
    }

    /// The shard owning `key`: hash the key onto the ring and walk clockwise
    /// to the next virtual node (wrapping past the top).
    #[must_use]
    pub fn shard_for(&self, key: &str) -> usize {
        let hash = ring_hash(key.as_bytes());
        let at = self.points.partition_point(|&(point, _)| point < hash);
        let (_, shard) = self.points[at % self.points.len()];
        shard
    }

    /// Number of shards on the ring.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Virtual nodes per shard.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_owned_by_a_valid_shard() {
        let ring = ShardRing::new(4, 8);
        for i in 0..256 {
            assert!(ring.shard_for(&format!("key|{i}")) < 4);
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = ShardRing::new(1, 8);
        for i in 0..64 {
            assert_eq!(ring.shard_for(&format!("key|{i}")), 0);
        }
    }
}
