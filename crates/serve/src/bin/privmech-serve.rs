//! The `privmech-serve` server binary.
//!
//! Binds a TCP listener, prints the bound address (machine-greppable, for
//! scripts driving an ephemeral port), and serves until a client sends the
//! `shutdown` op. With `--cache-file`, both response caches are loaded on
//! startup and dumped on shutdown (JSON Lines; entries are portable by the
//! bit-identity contract), so a restart keeps the hot set.
//!
//! ```text
//! privmech-serve [--addr HOST:PORT] [--threads N] [--cache-capacity N]
//!                [--cache-shards N] [--neg-cache-capacity N]
//!                [--sweep-threads N] [--cache-file PATH] [--verify-hits]
//!                [--max-inflight N]
//! ```

use privmech_serve::server::{self, ServerConfig};

fn main() {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--threads" => config.worker_threads = parse(&value("--threads"), "--threads"),
            "--cache-capacity" => {
                config.cache_capacity = parse(&value("--cache-capacity"), "--cache-capacity")
            }
            "--cache-shards" => {
                config.cache_shards = parse(&value("--cache-shards"), "--cache-shards")
            }
            "--neg-cache-capacity" => {
                config.neg_cache_capacity =
                    parse(&value("--neg-cache-capacity"), "--neg-cache-capacity")
            }
            "--sweep-threads" => {
                config.sweep_threads = parse(&value("--sweep-threads"), "--sweep-threads")
            }
            "--cache-file" => config.cache_file = Some(value("--cache-file").into()),
            "--verify-hits" => config.verify_hits = true,
            "--max-inflight" => {
                config.max_inflight_per_conn = parse(&value("--max-inflight"), "--max-inflight")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: privmech-serve [--addr HOST:PORT] [--threads N] \
                     [--cache-capacity N] [--cache-shards N] [--neg-cache-capacity N] \
                     [--sweep-threads N] [--cache-file PATH] [--verify-hits] \
                     [--max-inflight N]"
                );
                std::process::exit(2);
            }
        }
    }

    let handle = match server::spawn(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    // Scripts wait for this exact line to learn the ephemeral port.
    println!("privmech-serve listening on {}", handle.addr());
    handle.join();
    println!("privmech-serve stopped");
}

fn parse(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs a non-negative integer, got {text:?}");
        std::process::exit(2);
    })
}
