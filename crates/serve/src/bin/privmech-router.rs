//! The `privmech-router` fleet front-end binary.
//!
//! Binds a TCP listener, prints the bound address (machine-greppable, for
//! scripts driving an ephemeral port), and routes frames to the given
//! `privmech-serve` shards by consistent hashing on the canonical request
//! key until a client sends the `shutdown` op (which is broadcast to every
//! shard before the router stops).
//!
//! ```text
//! privmech-router --shard HOST:PORT [--shard HOST:PORT ...]
//!                 [--addr HOST:PORT] [--vnodes N] [--max-inflight N]
//! ```

use privmech_serve::router::{self, RouterConfig};

fn main() {
    let mut shards = Vec::new();
    let mut config = RouterConfig::new(Vec::new());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--shard" => shards.push(value("--shard")),
            "--vnodes" => config.vnodes = parse(&value("--vnodes"), "--vnodes"),
            "--max-inflight" => {
                config.max_inflight_per_conn = parse(&value("--max-inflight"), "--max-inflight")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: privmech-router --shard HOST:PORT [--shard HOST:PORT ...] \
                     [--addr HOST:PORT] [--vnodes N] [--max-inflight N]"
                );
                std::process::exit(2);
            }
        }
    }
    if shards.is_empty() {
        eprintln!("privmech-router needs at least one --shard HOST:PORT");
        std::process::exit(2);
    }
    config.shards = shards;

    let handle = match router::spawn(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    // Scripts wait for this exact line to learn the ephemeral port.
    println!("privmech-router listening on {}", handle.addr());
    handle.join();
    println!("privmech-router stopped");
}

fn parse(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs a non-negative integer, got {text:?}");
        std::process::exit(2);
    })
}
