//! Wire layer for the zoo operations (`zoo_table`, `zoo_eval`).
//!
//! `privmech-zoo` maps the limits of the paper's universal-optimality
//! theorem — regret tables over generalized query classes, LDP baselines,
//! multi-agent composition. This module is the protocol face of that crate:
//! it decodes zoo requests, validates them into typed scenarios
//! ([`ZooValidated`]), and **renders each result exactly once** into the
//! string that becomes both the cache entry and the bytes on the wire, so
//! zoo replies obey the same cached ≡ uncached ≡ routed byte-identity
//! contract as solves. The request/response shapes are documented in
//! `crates/serve/PROTOCOL.md` § Zoo operations.
//!
//! Error discipline mirrors the compute ops: schema problems (missing or
//! ill-typed fields, unknown kinds, oversized scenarios) are `bad_request`
//! and never cached; deterministic domain validation failures surface as
//! `CoreError`-mapped codes (`invalid_request`, `invalid_alpha`,
//! `non_monotone_loss`, `invalid_side_information`, …) and ride the negative
//! cache.

use std::sync::Arc;

use privmech_core::{
    validate_monotone, LossFunction, MinimaxConsumer, PrivacyLevel, SideInformation,
};
use privmech_zoo::{compose, ldp_gap, regret_table, AgentSpec, LdpProtocol, QueryClass};

use crate::json::{self, Json};
use crate::proto::{LossSpec, WireError, WireScalar};

/// Largest result-space bound a zoo request may demand. Matches
/// [`privmech_zoo::MAX_LDP_USERS`]; regret tables solve one tailored LP per
/// consumer plus one interaction LP per cell, so this also bounds the work a
/// single frame can request.
pub const MAX_ZOO_BOUND: usize = 64;

/// Largest consumer panel of a `zoo_table` request (the table costs
/// `O(consumers²)` interaction LPs).
pub const MAX_ZOO_CONSUMERS: usize = 16;

/// Largest agent list of a `zoo_eval` composition request.
pub const MAX_ZOO_AGENTS: usize = 16;

/// Decode a `query` object: `{kind: "count"|"sum"|"median", ...}`.
pub fn query_from_wire(value: &Json) -> Result<QueryClass, WireError> {
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::bad_request("query needs a string \"kind\""))?;
    let field = |name: &str| {
        value.get(name).and_then(Json::as_usize).ok_or_else(|| {
            WireError::bad_request(format!("{kind} query needs an integer \"{name}\""))
        })
    };
    let query = match kind {
        "count" => QueryClass::Count { n: field("n")? },
        "sum" => QueryClass::Sum {
            rows: field("rows")?,
            per_row: field("per_row")?,
        },
        "median" => QueryClass::Median {
            rows: field("rows")?,
            domain: field("domain")?,
        },
        other => {
            return Err(WireError::bad_request(format!(
                "unknown query kind \"{other}\""
            )))
        }
    };
    // Guard the result space before anything is allocated (cf. MAX_WIRE_N):
    // every parameter is bounded first so the product cannot overflow.
    let params_ok = match query {
        QueryClass::Count { n } => n <= MAX_ZOO_BOUND,
        QueryClass::Sum { rows, per_row } => rows <= MAX_ZOO_BOUND && per_row <= MAX_ZOO_BOUND,
        QueryClass::Median { rows, domain } => rows <= MAX_ZOO_BOUND && domain <= MAX_ZOO_BOUND,
    };
    if !params_ok || query.result_bound() > MAX_ZOO_BOUND {
        return Err(WireError::bad_request(format!(
            "query result space exceeds the zoo serving limit of {MAX_ZOO_BOUND}"
        )));
    }
    Ok(query)
}

/// Encode a [`QueryClass`] as the request's `query` object (the client-side
/// inverse of [`query_from_wire`]).
#[must_use]
pub fn query_to_wire(query: &QueryClass) -> Json {
    let obj = Json::obj().with("kind", Json::str(query.kind()));
    match *query {
        QueryClass::Count { n } => obj.with("n", Json::num_u64(n as u64)),
        QueryClass::Sum { rows, per_row } => obj
            .with("rows", Json::num_u64(rows as u64))
            .with("per_row", Json::num_u64(per_row as u64)),
        QueryClass::Median { rows, domain } => obj
            .with("rows", Json::num_u64(rows as u64))
            .with("domain", Json::num_u64(domain as u64)),
    }
}

/// One consumer of a `zoo_table` request: optional side information plus a
/// loss. Consumers are named positionally (`c0`, `c1`, …) in the reply.
#[derive(Debug, Clone)]
pub struct ZooConsumerSpec<T: WireScalar> {
    /// Minimax side information over the class's result space (`None` =
    /// full).
    pub support: Option<Vec<usize>>,
    /// The loss function.
    pub loss: LossSpec<T>,
}

impl<T: WireScalar> ZooConsumerSpec<T> {
    /// Encode as one element of the request's `consumers` array.
    #[must_use]
    pub fn to_wire(&self) -> Json {
        let mut obj = Json::obj();
        if let Some(support) = &self.support {
            obj = obj.with(
                "support",
                Json::Arr(support.iter().map(|&m| Json::num_u64(m as u64)).collect()),
            );
        }
        obj.with("loss", self.loss.to_wire())
    }

    fn from_wire(value: &Json) -> Result<Self, WireError> {
        let support = match value.get("support") {
            Some(cells) => {
                let cells = cells
                    .as_arr()
                    .ok_or_else(|| WireError::bad_request("consumer support must be an array"))?;
                let mut out = Vec::with_capacity(cells.len());
                for cell in cells {
                    out.push(cell.as_usize().ok_or_else(|| {
                        WireError::bad_request("support members must be non-negative integers")
                    })?);
                }
                Some(out)
            }
            None => None,
        };
        let loss = LossSpec::from_wire(
            value
                .get("loss")
                .ok_or_else(|| WireError::bad_request("consumer needs a loss"))?,
        )?;
        Ok(ZooConsumerSpec { support, loss })
    }

    /// Build the typed consumer named `c{index}`. Monotone-loss and
    /// side-information validation happen here (deterministic
    /// `CoreError`-mapped failures, negative-cacheable).
    fn to_consumer(&self, index: usize, bound: usize) -> Result<MinimaxConsumer<T>, WireError> {
        let loss = self.loss.to_loss()?;
        let side = match &self.support {
            Some(members) => {
                SideInformation::new(bound, members.iter().copied()).map_err(WireError::from)?
            }
            None => SideInformation::full(bound),
        };
        MinimaxConsumer::new(format!("c{index}"), loss, side).map_err(WireError::from)
    }
}

/// One agent of a `zoo_eval` composition request.
#[derive(Debug, Clone)]
pub struct ZooAgentSpec<T: WireScalar> {
    /// Display name (defaults to `a{index}`; restricted to
    /// `[A-Za-z0-9_-]{1,32}` so replies render without escaping).
    pub name: String,
    /// The agent's count-query bound.
    pub users: usize,
    /// The agent's own privacy parameter.
    pub alpha: T,
    /// The agent's loss function.
    pub loss: LossSpec<T>,
}

fn valid_agent_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 32
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl<T: WireScalar> ZooAgentSpec<T> {
    /// Encode as one element of the request's `agents` array.
    #[must_use]
    pub fn to_wire(&self) -> Json {
        Json::obj()
            .with("name", Json::str(self.name.clone()))
            .with("users", Json::num_u64(self.users as u64))
            .with("alpha", self.alpha.to_wire())
            .with("loss", self.loss.to_wire())
    }

    fn from_wire(index: usize, value: &Json) -> Result<Self, WireError> {
        let name = match value.get("name") {
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| WireError::bad_request("agent name must be a string"))?;
                if !valid_agent_name(name) {
                    return Err(WireError::bad_request(
                        "agent names are 1-32 chars of [A-Za-z0-9_-]",
                    ));
                }
                name.to_string()
            }
            None => format!("a{index}"),
        };
        let users = value
            .get("users")
            .and_then(Json::as_usize)
            .ok_or_else(|| WireError::bad_request("agent needs an integer \"users\""))?;
        if users == 0 || users > MAX_ZOO_BOUND {
            return Err(WireError::bad_request(format!(
                "agent users must be 1 ..= {MAX_ZOO_BOUND}"
            )));
        }
        let alpha = value
            .get("alpha")
            .and_then(T::from_wire)
            .ok_or_else(|| WireError::bad_request("agent needs a scalar \"alpha\""))?;
        let loss = LossSpec::from_wire(
            value
                .get("loss")
                .ok_or_else(|| WireError::bad_request("agent needs a loss"))?,
        )?;
        Ok(ZooAgentSpec {
            name,
            users,
            alpha,
            loss,
        })
    }

    fn canonical(&self) -> String {
        json::to_string(&self.to_wire())
    }
}

/// A decoded (schema-valid, not yet domain-validated) zoo request.
#[derive(Debug, Clone)]
pub enum ZooRequest<T: WireScalar> {
    /// `zoo_table`: the minimax-regret table of a query class over a
    /// consumer panel.
    Table {
        /// The query class.
        query: QueryClass,
        /// The shared privacy parameter.
        alpha: T,
        /// The consumer panel (columns, named `c0`, `c1`, … in the reply).
        consumers: Vec<ZooConsumerSpec<T>>,
    },
    /// `zoo_eval` scenario `"ldp"`: one point of the locality-gap profile.
    Ldp {
        /// The per-user local randomizer.
        protocol: LdpProtocol,
        /// Number of users (and count bound).
        users: usize,
        /// The privacy parameter.
        alpha: T,
        /// The consumer's loss function.
        loss: LossSpec<T>,
    },
    /// `zoo_eval` scenario `"compose"`: multi-agent composition.
    Compose {
        /// The agents, released side by side.
        agents: Vec<ZooAgentSpec<T>>,
    },
}

impl<T: WireScalar> ZooRequest<T> {
    /// Decode a zoo request frame (`op` is `"zoo_table"` or `"zoo_eval"`).
    /// Every failure here is schema-level `bad_request`.
    pub fn from_wire(op: &str, request: &Json) -> Result<Self, WireError> {
        match op {
            "zoo_table" => {
                let query = query_from_wire(
                    request
                        .get("query")
                        .ok_or_else(|| WireError::bad_request("zoo_table needs a \"query\""))?,
                )?;
                let alpha = request
                    .get("alpha")
                    .and_then(T::from_wire)
                    .ok_or_else(|| WireError::bad_request("zoo_table needs a scalar \"alpha\""))?;
                let cells = request
                    .get("consumers")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        WireError::bad_request("zoo_table needs a \"consumers\" array")
                    })?;
                if cells.is_empty() || cells.len() > MAX_ZOO_CONSUMERS {
                    return Err(WireError::bad_request(format!(
                        "zoo_table takes 1 ..= {MAX_ZOO_CONSUMERS} consumers"
                    )));
                }
                let mut consumers = Vec::with_capacity(cells.len());
                for cell in cells {
                    consumers.push(ZooConsumerSpec::from_wire(cell)?);
                }
                Ok(ZooRequest::Table {
                    query,
                    alpha,
                    consumers,
                })
            }
            "zoo_eval" => match request.get("scenario").and_then(Json::as_str) {
                Some("ldp") => {
                    let protocol = request
                        .get("protocol")
                        .and_then(Json::as_str)
                        .and_then(LdpProtocol::from_name)
                        .ok_or_else(|| {
                            WireError::bad_request(
                                "ldp scenario needs a protocol (\"randomized_response\" or \"hadamard\")",
                            )
                        })?;
                    let users = request
                        .get("users")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| {
                            WireError::bad_request("ldp scenario needs an integer \"users\"")
                        })?;
                    if users > MAX_ZOO_BOUND {
                        return Err(WireError::bad_request(format!(
                            "ldp users exceed the zoo serving limit of {MAX_ZOO_BOUND}"
                        )));
                    }
                    let alpha = request.get("alpha").and_then(T::from_wire).ok_or_else(|| {
                        WireError::bad_request("ldp scenario needs a scalar \"alpha\"")
                    })?;
                    let loss = LossSpec::from_wire(
                        request
                            .get("loss")
                            .ok_or_else(|| WireError::bad_request("ldp scenario needs a loss"))?,
                    )?;
                    Ok(ZooRequest::Ldp {
                        protocol,
                        users,
                        alpha,
                        loss,
                    })
                }
                Some("compose") => {
                    let cells = request
                        .get("agents")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| {
                            WireError::bad_request("compose scenario needs an \"agents\" array")
                        })?;
                    if cells.is_empty() || cells.len() > MAX_ZOO_AGENTS {
                        return Err(WireError::bad_request(format!(
                            "compose takes 1 ..= {MAX_ZOO_AGENTS} agents"
                        )));
                    }
                    let mut agents = Vec::with_capacity(cells.len());
                    for (index, cell) in cells.iter().enumerate() {
                        agents.push(ZooAgentSpec::from_wire(index, cell)?);
                    }
                    Ok(ZooRequest::Compose { agents })
                }
                Some(other) => Err(WireError::bad_request(format!(
                    "unknown zoo scenario \"{other}\""
                ))),
                None => Err(WireError::bad_request(
                    "zoo_eval needs a string \"scenario\" (\"ldp\" or \"compose\")",
                )),
            },
            _ => Err(WireError::bad_request(format!(
                "\"{op}\" is not a zoo operation"
            ))),
        }
    }

    /// The canonical text form of this request: every spelling of the same
    /// scenario renders identically, so cache keys, negative-cache keys and
    /// routing keys built from it agree across clients and shards.
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            ZooRequest::Table {
                query,
                alpha,
                consumers,
            } => {
                let panel: Vec<String> = consumers
                    .iter()
                    .map(|c| json::to_string(&c.to_wire()))
                    .collect();
                format!(
                    "table;{};alpha={};consumers=[{}]",
                    query.canonical(),
                    json::to_string(&alpha.to_wire()),
                    panel.join(",")
                )
            }
            ZooRequest::Ldp {
                protocol,
                users,
                alpha,
                loss,
            } => format!(
                "ldp;protocol={};users={users};alpha={};loss={}",
                protocol.name(),
                json::to_string(&alpha.to_wire()),
                json::to_string(&loss.to_wire())
            ),
            ZooRequest::Compose { agents } => {
                let list: Vec<String> = agents.iter().map(ZooAgentSpec::canonical).collect();
                format!("compose;agents=[{}]", list.join(","))
            }
        }
    }

    /// Domain validation: build the typed scenario, surfacing deterministic
    /// `CoreError`-mapped failures (negative-cacheable) without running any
    /// LP.
    pub fn validate(&self) -> Result<ZooValidated<T>, WireError> {
        match self {
            ZooRequest::Table {
                query,
                alpha,
                consumers,
            } => {
                query.validate().map_err(WireError::from)?;
                let level = PrivacyLevel::new(alpha.clone()).map_err(WireError::from)?;
                let bound = query.result_bound();
                let mut typed = Vec::with_capacity(consumers.len());
                for (index, consumer) in consumers.iter().enumerate() {
                    typed.push(consumer.to_consumer(index, bound)?);
                }
                Ok(ZooValidated::Table {
                    query: query.clone(),
                    level,
                    consumers: typed,
                })
            }
            ZooRequest::Ldp {
                protocol,
                users,
                alpha,
                loss,
            } => {
                let level = PrivacyLevel::new(alpha.clone()).map_err(WireError::from)?;
                let loss = loss.to_loss()?;
                validate_monotone(*users, loss.as_ref()).map_err(WireError::from)?;
                Ok(ZooValidated::Ldp {
                    protocol: *protocol,
                    users: *users,
                    level,
                    loss,
                })
            }
            ZooRequest::Compose { agents } => {
                let mut typed = Vec::with_capacity(agents.len());
                for agent in agents {
                    // Per-agent level and loss validation up front, so a bad
                    // α or a non-monotone table is a validate-stage error.
                    PrivacyLevel::new(agent.alpha.clone()).map_err(WireError::from)?;
                    let loss = agent.loss.to_loss()?;
                    validate_monotone(agent.users, loss.as_ref()).map_err(WireError::from)?;
                    typed.push(AgentSpec {
                        name: agent.name.clone(),
                        users: agent.users,
                        alpha: agent.alpha.clone(),
                        loss,
                    });
                }
                Ok(ZooValidated::Compose { agents: typed })
            }
        }
    }
}

/// A domain-validated zoo scenario, ready to evaluate.
pub enum ZooValidated<T: WireScalar> {
    /// A regret table over a consumer panel.
    Table {
        /// The query class.
        query: QueryClass,
        /// The shared privacy level.
        level: PrivacyLevel<T>,
        /// The typed consumer panel (`c0`, `c1`, …).
        consumers: Vec<MinimaxConsumer<T>>,
    },
    /// One locality-gap point.
    Ldp {
        /// The per-user channel.
        protocol: LdpProtocol,
        /// Number of users.
        users: usize,
        /// The privacy level.
        level: PrivacyLevel<T>,
        /// The consumer's loss.
        loss: Arc<dyn LossFunction<T> + Send + Sync>,
    },
    /// A multi-agent composition.
    Compose {
        /// The typed agents.
        agents: Vec<AgentSpec<T>>,
    },
}

impl<T: WireScalar> std::fmt::Debug for ZooValidated<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZooValidated::Table {
                query, consumers, ..
            } => f
                .debug_struct("Table")
                .field("query", query)
                .field("consumers", &consumers.len())
                .finish_non_exhaustive(),
            ZooValidated::Ldp {
                protocol, users, ..
            } => f
                .debug_struct("Ldp")
                .field("protocol", protocol)
                .field("users", users)
                .finish_non_exhaustive(),
            ZooValidated::Compose { agents } => f
                .debug_struct("Compose")
                .field("agents", &agents.len())
                .finish_non_exhaustive(),
        }
    }
}

fn render_scalars_onto<T: WireScalar>(out: &mut String, items: &[T]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.render_onto(out);
    }
    out.push(']');
}

fn render_rows_onto<T: WireScalar>(out: &mut String, rows: &[Vec<T>]) {
    out.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_scalars_onto(out, row);
    }
    out.push(']');
}

/// Quote a name whose characters are already known JSON-safe (consumer and
/// candidate names are positional or `[A-Za-z0-9_:-]`).
fn render_names_onto(out: &mut String, names: &[String]) {
    out.push('[');
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(name);
        out.push('"');
    }
    out.push(']');
}

impl<T: WireScalar> ZooValidated<T> {
    /// Evaluate the scenario and render its `result` object **once** —
    /// the returned string is stored in the cache and spliced verbatim into
    /// the response envelope (the render-once discipline of the solve miss
    /// path, see `PROTOCOL.md` § Zoo operations for the shapes).
    pub fn evaluate(&self) -> Result<String, WireError> {
        use std::fmt::Write as _;
        match self {
            ZooValidated::Table {
                query,
                level,
                consumers,
            } => {
                let table = regret_table(query, level, consumers).map_err(WireError::from)?;
                let mut out = String::from("{\"class\":\"");
                out.push_str(&table.class.canonical());
                out.push_str("\",\"alpha\":");
                table.alpha.render_onto(&mut out);
                out.push_str(",\"consumers\":");
                render_names_onto(&mut out, &table.consumer_names);
                out.push_str(",\"candidates\":");
                render_names_onto(&mut out, &table.candidate_names);
                out.push_str(",\"opt\":");
                render_scalars_onto(&mut out, &table.opt);
                out.push_str(",\"losses\":");
                render_rows_onto(&mut out, &table.losses);
                out.push_str(",\"regrets\":");
                render_rows_onto(&mut out, &table.regrets);
                out.push_str(",\"dominant\":[");
                for (i, idx) in table.dominant.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{idx}");
                }
                out.push_str("],\"non_dominated_pair\":");
                match table.non_dominated_pair {
                    Some((j, k)) => {
                        let _ = write!(out, "[{j},{k}]");
                    }
                    None => out.push_str("null"),
                }
                out.push('}');
                Ok(out)
            }
            ZooValidated::Ldp {
                protocol,
                users,
                level,
                loss,
            } => {
                let point =
                    ldp_gap(*protocol, *users, level, Arc::clone(loss)).map_err(WireError::from)?;
                let mut out = String::from("{\"protocol\":\"");
                out.push_str(protocol.name());
                let _ = write!(out, "\",\"users\":{},\"alpha\":", point.users);
                level.alpha().render_onto(&mut out);
                out.push_str(",\"ldp_loss\":");
                point.ldp_loss.render_onto(&mut out);
                out.push_str(",\"central_loss\":");
                point.central_loss.render_onto(&mut out);
                out.push_str(",\"gap\":");
                point.gap.render_onto(&mut out);
                out.push('}');
                Ok(out)
            }
            ZooValidated::Compose { agents } => {
                let report = compose(agents).map_err(WireError::from)?;
                let mut out = String::from("{\"agents\":[");
                for (i, agent) in report.per_agent.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"users\":{},\"alpha\":",
                        agent.name, agent.users
                    );
                    agent.alpha.render_onto(&mut out);
                    out.push_str(",\"loss\":");
                    agent.loss.render_onto(&mut out);
                    out.push('}');
                }
                out.push_str("],\"composed_alpha\":");
                report.composed_alpha.render_onto(&mut out);
                out.push_str(",\"joint_loss\":");
                report.joint_loss.render_onto(&mut out);
                out.push('}');
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use privmech_numerics::{rat, Rational};

    use super::*;

    fn table_request_with(kind_obj: Json, alpha: &str, consumers: Vec<Json>) -> Json {
        Json::obj()
            .with("query", kind_obj)
            .with("alpha", Json::str(alpha))
            .with("consumers", Json::Arr(consumers))
    }

    fn table_request(kind_obj: Json, alpha: &str) -> Json {
        table_request_with(
            kind_obj,
            alpha,
            vec![Json::obj().with("loss", Json::str("absolute"))],
        )
    }

    #[test]
    fn table_request_round_trips_and_has_a_stable_canonical() {
        let request = table_request(query_to_wire(&QueryClass::Count { n: 2 }), "1/2");
        let parsed = ZooRequest::<Rational>::from_wire("zoo_table", &request).unwrap();
        assert_eq!(
            parsed.canonical(),
            "table;count;n=2;alpha=\"1/2\";consumers=[{\"loss\":\"absolute\"}]"
        );
        // A differently-spelled alpha (decimal literal) canonicalizes the
        // same, so both spellings share one cache entry and one shard.
        let respelled = table_request(query_to_wire(&QueryClass::Count { n: 2 }), "1/2")
            .with("cache", Json::str("use"));
        let reparsed = ZooRequest::<Rational>::from_wire("zoo_table", &respelled).unwrap();
        assert_eq!(parsed.canonical(), reparsed.canonical());
    }

    #[test]
    fn schema_rejections_are_bad_request() {
        for request in [
            Json::obj(), // no query
            table_request(Json::obj().with("kind", Json::str("mean")), "1/2"),
            table_request(
                Json::obj()
                    .with("kind", Json::str("count"))
                    .with("n", Json::num_u64(65)),
                "1/2",
            ),
            table_request_with(
                query_to_wire(&QueryClass::Count { n: 2 }),
                "1/2",
                Vec::new(),
            ),
        ] {
            let err = ZooRequest::<Rational>::from_wire("zoo_table", &request).unwrap_err();
            assert_eq!(err.code, "bad_request");
        }
        let err = ZooRequest::<Rational>::from_wire(
            "zoo_eval",
            &Json::obj().with("scenario", Json::str("teleport")),
        )
        .unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn domain_rejections_carry_core_codes() {
        // Degenerate class parameters pass the schema but fail validation
        // with the core's (negative-cacheable) code.
        let request = table_request(
            Json::obj()
                .with("kind", Json::str("median"))
                .with("rows", Json::num_u64(4))
                .with("domain", Json::num_u64(2)),
            "1/2",
        );
        let parsed = ZooRequest::<Rational>::from_wire("zoo_table", &request).unwrap();
        assert_eq!(parsed.validate().unwrap_err().code, "invalid_request");
        // A bad α is invalid_alpha.
        let request = table_request(query_to_wire(&QueryClass::Count { n: 2 }), "3/2");
        let parsed = ZooRequest::<Rational>::from_wire("zoo_table", &request).unwrap();
        assert_eq!(parsed.validate().unwrap_err().code, "invalid_alpha");
        // Out-of-range support is invalid_side_information.
        let request = table_request_with(
            query_to_wire(&QueryClass::Count { n: 2 }),
            "1/2",
            vec![Json::obj()
                .with("support", Json::Arr(vec![Json::num_u64(9)]))
                .with("loss", Json::str("absolute"))],
        );
        let parsed = ZooRequest::<Rational>::from_wire("zoo_table", &request).unwrap();
        assert_eq!(
            parsed.validate().unwrap_err().code,
            "invalid_side_information"
        );
    }

    #[test]
    fn table_evaluation_renders_valid_deterministic_json() {
        let request = table_request(query_to_wire(&QueryClass::Count { n: 2 }), "1/2");
        let parsed = ZooRequest::<Rational>::from_wire("zoo_table", &request).unwrap();
        let validated = parsed.validate().unwrap();
        let rendered = validated.evaluate().unwrap();
        assert_eq!(rendered, validated.evaluate().unwrap(), "deterministic");
        let tree = json::parse(&rendered).unwrap();
        // Renders canonically (Raw splicing relies on this).
        assert_eq!(json::to_string(&tree), rendered);
        assert_eq!(tree.get("class").and_then(Json::as_str), Some("count;n=2"));
        // Theorem 1 on the wire: the geometric candidate dominates counts.
        let candidates = tree.get("candidates").and_then(Json::as_arr).unwrap();
        let g = candidates
            .iter()
            .position(|c| c.as_str() == Some("geometric"))
            .unwrap();
        let dominant = tree.get("dominant").and_then(Json::as_arr).unwrap();
        assert!(dominant.iter().any(|d| d.as_usize() == Some(g)));
    }

    #[test]
    fn ldp_evaluation_reports_a_positive_gap() {
        let request = Json::obj()
            .with("scenario", Json::str("ldp"))
            .with("protocol", Json::str("randomized_response"))
            .with("users", Json::num_u64(2))
            .with("alpha", Json::str("1/2"))
            .with("loss", Json::str("absolute"));
        let parsed = ZooRequest::<Rational>::from_wire("zoo_eval", &request).unwrap();
        let rendered = parsed.validate().unwrap().evaluate().unwrap();
        let tree = json::parse(&rendered).unwrap();
        assert_eq!(json::to_string(&tree), rendered);
        let gap: Rational = tree.get("gap").unwrap().as_str().unwrap().parse().unwrap();
        assert!(gap > Rational::zero());
    }

    #[test]
    fn compose_evaluation_multiplies_levels() {
        let agent = |name: &str, alpha: &str| {
            Json::obj()
                .with("name", Json::str(name))
                .with("users", Json::num_u64(3))
                .with("alpha", Json::str(alpha))
                .with("loss", Json::str("absolute"))
        };
        let request = Json::obj().with("scenario", Json::str("compose")).with(
            "agents",
            Json::Arr(vec![agent("north", "1/4"), agent("south", "1/2")]),
        );
        let parsed = ZooRequest::<Rational>::from_wire("zoo_eval", &request).unwrap();
        let rendered = parsed.validate().unwrap().evaluate().unwrap();
        let tree = json::parse(&rendered).unwrap();
        assert_eq!(json::to_string(&tree), rendered);
        assert_eq!(
            tree.get("composed_alpha").and_then(Json::as_str),
            Some("1/8")
        );
        let agents = tree.get("agents").and_then(Json::as_arr).unwrap();
        // The first agent is the paper's pinned Table 1(a) instance.
        assert_eq!(
            agents[0].get("loss").and_then(Json::as_str),
            Some("168/415")
        );
        // Unnamed agents default to positional names.
        let request = Json::obj().with("scenario", Json::str("compose")).with(
            "agents",
            Json::Arr(vec![Json::obj()
                .with("users", Json::num_u64(2))
                .with("alpha", Json::str("1/2"))
                .with("loss", Json::str("absolute"))]),
        );
        let parsed = ZooRequest::<Rational>::from_wire("zoo_eval", &request).unwrap();
        let rendered = parsed.validate().unwrap().evaluate().unwrap();
        assert!(rendered.contains("\"name\":\"a0\""));
    }

    #[test]
    fn f64_backend_evaluates_too() {
        let request = Json::obj()
            .with("query", query_to_wire(&QueryClass::Count { n: 2 }))
            .with("alpha", Json::Num("0.5".into()))
            .with(
                "consumers",
                Json::Arr(vec![Json::obj().with("loss", Json::str("absolute"))]),
            );
        let parsed = ZooRequest::<f64>::from_wire("zoo_table", &request).unwrap();
        let rendered = parsed.validate().unwrap().evaluate().unwrap();
        let tree = json::parse(&rendered).unwrap();
        assert_eq!(json::to_string(&tree), rendered);
    }

    #[test]
    fn canonical_distinguishes_scenarios() {
        let ldp = Json::obj()
            .with("scenario", Json::str("ldp"))
            .with("protocol", Json::str("hadamard"))
            .with("users", Json::num_u64(3))
            .with("alpha", Json::str("1/3"))
            .with("loss", Json::str("zero-one"));
        let parsed = ZooRequest::<Rational>::from_wire("zoo_eval", &ldp).unwrap();
        assert_eq!(
            parsed.canonical(),
            "ldp;protocol=hadamard;users=3;alpha=\"1/3\";loss=\"zero-one\""
        );
        assert_eq!(rat(1, 3).to_string(), "1/3");
    }
}
