//! A small blocking client for the v1 protocol.
//!
//! One [`Client`] owns one connection and issues one request at a time
//! (responses come back in order; open more clients for more concurrency —
//! the server serves each connection on its own worker). The typed helpers
//! ([`Client::solve`], [`Client::sweep`], [`Client::interact`]) mirror the
//! engine API; [`Client::call`] sends a raw JSON request for everything else.
//!
//! Every typed reply carries `raw`: the canonical serialization of the
//! response's `result` object. Two replies are byte-identical exactly when
//! their `raw` strings are equal — this is how callers check the cached ≡
//! uncached contract end to end.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use privmech_core::PivotStats;

use crate::frame::{read_frame, write_frame};
use crate::json::{self, Json};
use crate::proto::{
    rows_from_wire, stats_from_wire, CacheDisposition, CacheMode, ConsumerSpec, WireError,
    WireScalar, PROTOCOL_VERSION,
};

/// Client-side failure: transport, protocol, or a server-reported error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or framing failure.
    Io(io::Error),
    /// The server answered, but not with the schema this client expects.
    Protocol(String),
    /// The server reported an error response.
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A solve (or one sweep entry) as decoded from the wire.
#[derive(Debug, Clone)]
pub struct SolveReply<T> {
    /// The privacy level the solve answered.
    pub alpha: T,
    /// The consumer's optimal loss.
    pub loss: T,
    /// The tailored optimal mechanism, row by row.
    pub mechanism: Vec<Vec<T>>,
    /// Simplex pivot statistics of the underlying solve.
    pub stats: PivotStats,
}

/// An `interact` result as decoded from the wire.
#[derive(Debug, Clone)]
pub struct InteractReply<T> {
    /// The consumer's loss after optimal post-processing.
    pub loss: T,
    /// The optimal post-processing matrix `T*`.
    pub post_processing: Vec<Vec<T>>,
    /// The induced mechanism (deployed · `T*`).
    pub induced: Vec<Vec<T>>,
    /// Simplex pivot statistics of the interaction LP.
    pub stats: PivotStats,
}

/// A typed reply plus its transport metadata.
#[derive(Debug, Clone)]
pub struct Reply<R> {
    /// The decoded result.
    pub value: R,
    /// How the server answered (hit / miss / bypass).
    pub cache: CacheDisposition,
    /// Canonical serialization of the `result` object — byte-comparable
    /// across replies.
    pub raw: String,
}

/// Server cache counters as reported by the `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStatsReply {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that computed fresh.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Total capacity.
    pub capacity: u64,
    /// Shard count.
    pub shards: u64,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 0,
        })
    }

    /// Send a raw request object (the `v` and `id` fields are filled in) and
    /// return the raw response object. Server-side errors come back as
    /// [`ClientError::Server`].
    pub fn call(&mut self, request: Json) -> Result<Json, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let mut framed = Json::obj()
            .with("v", Json::num_u64(PROTOCOL_VERSION))
            .with("id", Json::num_u64(id));
        if let (Json::Obj(dst), Json::Obj(src)) = (&mut framed, request) {
            dst.extend(src);
        }
        write_frame(&mut self.writer, json::to_string(&framed).as_bytes())?;
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".to_string()))?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".to_string()))?;
        let response =
            json::parse(text).map_err(|e| ClientError::Protocol(format!("bad response: {e}")))?;
        if response.get("id").and_then(Json::as_u64) != Some(id) {
            return Err(ClientError::Protocol("response id mismatch".to_string()));
        }
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            Some(false) => {
                let error = response.get("error");
                let code = error
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .unwrap_or("internal");
                let message = error
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                // Return the server's code through a static table so the
                // WireError keeps its &'static str code type.
                Err(ClientError::Server(WireError::new(
                    intern_code(code),
                    message,
                )))
            }
            None => Err(ClientError::Protocol(
                "response lacks an \"ok\" field".to_string(),
            )),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let response = self.call(Json::obj().with("op", Json::str("ping")))?;
        match result_of(&response)?.get("pong").and_then(Json::as_bool) {
            Some(true) => Ok(()),
            _ => Err(ClientError::Protocol("ping got no pong".to_string())),
        }
    }

    /// Fetch the server's cache counters.
    pub fn cache_stats(&mut self) -> Result<CacheStatsReply, ClientError> {
        let response = self.call(Json::obj().with("op", Json::str("stats")))?;
        let result = result_of(&response)?;
        let field = |name: &str| {
            result
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("stats reply lacks \"{name}\"")))
        };
        Ok(CacheStatsReply {
            hits: field("hits")?,
            misses: field("misses")?,
            evictions: field("evictions")?,
            entries: field("entries")?,
            capacity: field("capacity")?,
            shards: field("shards")?,
        })
    }

    /// Ask the server to stop accepting connections and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(Json::obj().with("op", Json::str("shutdown")))
            .map(|_| ())
    }

    /// Solve one request at one privacy level.
    pub fn solve<T: WireScalar>(
        &mut self,
        spec: &ConsumerSpec<T>,
        alpha: &T,
        cache: CacheMode,
    ) -> Result<Reply<SolveReply<T>>, ClientError> {
        let request = spec
            .encode_onto(
                Json::obj()
                    .with("op", Json::str("solve"))
                    .with("scalar", Json::str(T::TAG))
                    .with("cache", Json::str(cache.as_wire())),
            )
            .with("alpha", alpha.to_wire());
        let response = self.call(request)?;
        let (result, cache, raw) = cached_result(&response)?;
        Ok(Reply {
            value: decode_solve(result)?,
            cache,
            raw,
        })
    }

    /// Solve one request at a batch of privacy levels.
    pub fn sweep<T: WireScalar>(
        &mut self,
        spec: &ConsumerSpec<T>,
        alphas: &[T],
        cache: CacheMode,
    ) -> Result<Reply<Vec<SolveReply<T>>>, ClientError> {
        let request = spec
            .encode_onto(
                Json::obj()
                    .with("op", Json::str("sweep"))
                    .with("scalar", Json::str(T::TAG))
                    .with("cache", Json::str(cache.as_wire())),
            )
            .with(
                "alphas",
                Json::Arr(alphas.iter().map(WireScalar::to_wire).collect()),
            );
        let response = self.call(request)?;
        let (result, cache, raw) = cached_result(&response)?;
        let solves = result
            .get("solves")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Protocol("sweep reply lacks \"solves\"".to_string()))?;
        let value = solves
            .iter()
            .map(decode_solve)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Reply { value, cache, raw })
    }

    /// Optimal post-processing of a deployed mechanism.
    pub fn interact<T: WireScalar>(
        &mut self,
        spec: &ConsumerSpec<T>,
        mechanism: &[Vec<T>],
        cache: CacheMode,
    ) -> Result<Reply<InteractReply<T>>, ClientError> {
        let request = spec
            .encode_onto(
                Json::obj()
                    .with("op", Json::str("interact"))
                    .with("scalar", Json::str(T::TAG))
                    .with("cache", Json::str(cache.as_wire())),
            )
            .with(
                "mechanism",
                Json::Arr(
                    mechanism
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(WireScalar::to_wire).collect()))
                        .collect(),
                ),
            );
        let response = self.call(request)?;
        let (result, cache, raw) = cached_result(&response)?;
        let loss = scalar_reply_field::<T>(result, "loss")?;
        let post_processing = rows_from_wire(result.get("post_processing").ok_or_else(|| {
            ClientError::Protocol("interact reply lacks \"post_processing\"".to_string())
        })?)
        .map_err(|e| ClientError::Protocol(e.to_string()))?;
        let induced = rows_from_wire(result.get("induced").ok_or_else(|| {
            ClientError::Protocol("interact reply lacks \"induced\"".to_string())
        })?)
        .map_err(|e| ClientError::Protocol(e.to_string()))?;
        let stats = result
            .get("stats")
            .and_then(stats_from_wire)
            .ok_or_else(|| ClientError::Protocol("interact reply lacks \"stats\"".to_string()))?;
        Ok(Reply {
            value: InteractReply {
                loss,
                post_processing,
                induced,
                stats,
            },
            cache,
            raw,
        })
    }
}

fn result_of(response: &Json) -> Result<&Json, ClientError> {
    response
        .get("result")
        .ok_or_else(|| ClientError::Protocol("response lacks a \"result\"".to_string()))
}

fn cached_result(response: &Json) -> Result<(&Json, CacheDisposition, String), ClientError> {
    let result = result_of(response)?;
    let cache = response
        .get("cache")
        .and_then(CacheDisposition::from_wire)
        .ok_or_else(|| ClientError::Protocol("response lacks a \"cache\" field".to_string()))?;
    Ok((result, cache, json::to_string(result)))
}

fn scalar_reply_field<T: WireScalar>(result: &Json, field: &str) -> Result<T, ClientError> {
    result
        .get(field)
        .and_then(T::from_wire)
        .ok_or_else(|| ClientError::Protocol(format!("reply lacks a scalar \"{field}\"")))
}

fn decode_solve<T: WireScalar>(result: &Json) -> Result<SolveReply<T>, ClientError> {
    let alpha = scalar_reply_field::<T>(result, "alpha")?;
    let loss = scalar_reply_field::<T>(result, "loss")?;
    let mechanism = rows_from_wire(
        result
            .get("mechanism")
            .ok_or_else(|| ClientError::Protocol("solve reply lacks \"mechanism\"".to_string()))?,
    )
    .map_err(|e| ClientError::Protocol(e.to_string()))?;
    let stats = result
        .get("stats")
        .and_then(stats_from_wire)
        .ok_or_else(|| ClientError::Protocol("solve reply lacks \"stats\"".to_string()))?;
    Ok(SolveReply {
        alpha,
        loss,
        mechanism,
        stats,
    })
}

/// Map a server error code onto its static form (unknown codes collapse to
/// `"internal"` — the message still carries the original text).
fn intern_code(code: &str) -> &'static str {
    const CODES: &[&str] = &[
        "unsupported_version",
        "malformed_frame",
        "malformed_json",
        "bad_request",
        "unknown_op",
        "unsupported_scalar",
        "invalid_alpha",
        "invalid_mechanism",
        "invalid_post_processing",
        "non_monotone_loss",
        "invalid_side_information",
        "invalid_prior",
        "invalid_privacy_levels",
        "not_derivable",
        "invalid_request",
        "input_out_of_range",
        "linalg_error",
        "lp_error",
        "cache_verify_failed",
    ];
    CODES
        .iter()
        .find(|&&c| c == code)
        .copied()
        .unwrap_or("internal")
}
