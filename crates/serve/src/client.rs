//! The typed protocol client: blocking calls over v1 semantics, and a
//! nonblocking, pipelined surface over protocol v2.
//!
//! One [`Client`] owns one connection. On connect it **negotiates** the
//! protocol: it sends a `hello` op and speaks v2 (tagged multi-in-flight
//! requests, streaming sweeps) if the server answers, falling back to strict
//! v1 request/response against older servers (which reject `hello` with
//! `unknown_op`).
//!
//! The nonblocking surface is [`Client::submit`] (send a request, get a
//! [`Ticket`]), [`Client::recv`] (the next completion from the server, any
//! ticket), [`Client::wait`] (block for one ticket) and
//! [`Client::sweep_stream`] (iterate a sweep's per-α results **as the server
//! finishes them**, out of order, each tagged with its input index). The
//! blocking helpers ([`Client::solve`], [`Client::sweep`],
//! [`Client::interact`]) are thin wrappers over submit/wait and work
//! identically under both negotiated versions.
//!
//! Every typed reply carries `raw`: the canonical serialization of the
//! response's `result` object. Two replies are byte-identical exactly when
//! their `raw` strings are equal — this is how callers check the cached ≡
//! uncached (and v1 ≡ v2) contracts end to end. A blocking v2 `sweep`
//! reassembles the monolithic v1 `raw` from its streamed items, so the raw
//! strings are byte-comparable **across protocol versions** too.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use privmech_core::PivotStats;
use privmech_zoo::{LdpProtocol, QueryClass};

use crate::frame::{read_frame, write_frame};
use crate::json::{self, Json};
use crate::proto::{
    intern_code, rows_from_wire, stats_from_wire, CacheDisposition, CacheMode, ConsumerSpec,
    LossSpec, WireError, WireScalar, PROTOCOL_V1, PROTOCOL_VERSION,
};
use crate::zoo::{query_to_wire, ZooAgentSpec, ZooConsumerSpec};

/// Client-side failure: transport, protocol, or a server-reported error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or framing failure.
    Io(io::Error),
    /// The server answered, but not with the schema this client expects.
    Protocol(String),
    /// The server reported an error response.
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A solve (or one sweep entry) as decoded from the wire.
#[derive(Debug, Clone)]
pub struct SolveReply<T> {
    /// The privacy level the solve answered.
    pub alpha: T,
    /// The consumer's optimal loss.
    pub loss: T,
    /// The tailored optimal mechanism, row by row.
    pub mechanism: Vec<Vec<T>>,
    /// Simplex pivot statistics of the underlying solve.
    pub stats: PivotStats,
}

/// An `interact` result as decoded from the wire.
#[derive(Debug, Clone)]
pub struct InteractReply<T> {
    /// The consumer's loss after optimal post-processing.
    pub loss: T,
    /// The optimal post-processing matrix `T*`.
    pub post_processing: Vec<Vec<T>>,
    /// The induced mechanism (deployed · `T*`).
    pub induced: Vec<Vec<T>>,
    /// Simplex pivot statistics of the interaction LP.
    pub stats: PivotStats,
}

/// A typed reply plus its transport metadata.
#[derive(Debug, Clone)]
pub struct Reply<R> {
    /// The decoded result.
    pub value: R,
    /// How the server answered (hit / miss / bypass).
    pub cache: CacheDisposition,
    /// Canonical serialization of the `result` object — byte-comparable
    /// across replies (and across protocol versions).
    pub raw: String,
}

/// Server cache counters as reported by the `stats` op. The `neg_*` fields
/// mirror the negative (validation-error) cache, whose counters are kept
/// separate so error hits don't pollute the solve hit rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStatsReply {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that computed fresh.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Total capacity.
    pub capacity: u64,
    /// Shard count.
    pub shards: u64,
    /// Negative-cache lookups answered from the cache.
    pub neg_hits: u64,
    /// Negative-cache lookups that found nothing (every request probes once).
    pub neg_misses: u64,
    /// Negative-cache entries displaced by capacity pressure.
    pub neg_evictions: u64,
    /// Negative-cache entries currently resident.
    pub neg_entries: u64,
    /// Negative-cache capacity.
    pub neg_capacity: u64,
    /// Per-connection in-flight cap (0 = unbounded; 0 against pre-PR7
    /// servers, which did not bound the queue).
    pub max_inflight: u64,
    /// High-water mark of any single connection's in-flight depth.
    pub inflight_peak: u64,
}

/// A handle to one in-flight request, matched against completions by its
/// client-chosen id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    id: u64,
}

impl Ticket {
    /// The wire id this ticket's frames carry.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// One completion read off the wire (see [`Client::recv`]). Completions for
/// different tickets may arrive in any order; a sweep produces many
/// [`Event::SweepItem`]s closed by one terminal [`Event::SweepDone`], while
/// every other request produces exactly one terminal [`Event::Reply`] or
/// [`Event::Error`].
#[derive(Debug, Clone)]
pub enum Event {
    /// A terminal successful reply.
    Reply {
        /// The request this completes.
        ticket: Ticket,
        /// The full response envelope.
        response: Json,
    },
    /// A terminal error reply.
    Error {
        /// The request this completes.
        ticket: Ticket,
        /// The decoded server error.
        error: WireError,
    },
    /// One streamed `sweep_item` frame (non-terminal).
    SweepItem {
        /// The sweep request this belongs to.
        ticket: Ticket,
        /// Index into the request's `alphas` array.
        index: usize,
        /// The full frame envelope (its `result` is one solve).
        response: Json,
    },
    /// The terminal `sweep_done` frame.
    SweepDone {
        /// The sweep request this completes.
        ticket: Ticket,
        /// The full frame envelope (its `result` carries aggregate stats).
        response: Json,
    },
}

impl Event {
    /// The ticket this event belongs to.
    #[must_use]
    pub fn ticket(&self) -> Ticket {
        match self {
            Event::Reply { ticket, .. }
            | Event::Error { ticket, .. }
            | Event::SweepItem { ticket, .. }
            | Event::SweepDone { ticket, .. } => *ticket,
        }
    }

    /// Whether this event ends its ticket's lifetime.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Event::SweepItem { .. })
    }
}

/// A protocol client over one TCP connection: blocking typed helpers plus
/// the pipelined submit/recv surface (see the module docs).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    version: u64,
    /// Completions read while looking for a different ticket, replayed in
    /// arrival order by [`Client::recv`] / [`Client::wait`].
    buffered: VecDeque<Event>,
}

impl Client {
    /// Connect and negotiate the protocol version: v2 if the server answers
    /// `hello`, v1 if it rejects it (an older server).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let mut client = Self::connect_raw(addr)?;
        client.version = PROTOCOL_VERSION;
        match client.call(Json::obj().with("op", Json::str("hello"))) {
            Ok(_) => {}
            Err(ClientError::Server(e))
                if e.code == "unknown_op" || e.code == "unsupported_version" =>
            {
                client.version = PROTOCOL_V1;
            }
            Err(ClientError::Io(e)) => return Err(e),
            Err(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("version negotiation failed: {other}"),
                ))
            }
        }
        Ok(client)
    }

    /// Connect speaking exactly `version` (1 or 2), skipping negotiation —
    /// e.g. to benchmark serial v1 request/response against pipelined v2 on
    /// the same server.
    pub fn connect_with_version(addr: impl ToSocketAddrs, version: u64) -> io::Result<Client> {
        if version != PROTOCOL_V1 && version != PROTOCOL_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "this client speaks v{PROTOCOL_V1} and v{PROTOCOL_VERSION}, not v{version}"
                ),
            ));
        }
        let mut client = Self::connect_raw(addr)?;
        client.version = version;
        Ok(client)
    }

    fn connect_raw(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 0,
            version: PROTOCOL_V1,
            buffered: VecDeque::new(),
        })
    }

    /// The negotiated protocol major this client stamps on requests.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Send a request without waiting for its completion. The `v` and `id`
    /// fields are filled in; the returned [`Ticket`] matches the completion
    /// frames. Pipelined submits work under negotiated v1 too — but only
    /// because this client always stamps an `id` to match replies by:
    /// against a v2-era server even v1 frames are computed concurrently and
    /// may complete out of order (see `PROTOCOL.md`), so replies are
    /// correlated by id, never by arrival order.
    pub fn submit(&mut self, request: Json) -> Result<Ticket, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let mut framed = Json::obj()
            .with("v", Json::num_u64(self.version))
            .with("id", Json::num_u64(id));
        if let (Json::Obj(dst), Json::Obj(src)) = (&mut framed, request) {
            dst.extend(src);
        }
        write_frame(&mut self.writer, json::to_string(&framed).as_bytes())?;
        Ok(Ticket { id })
    }

    /// Read one frame off the wire and classify it.
    fn read_event(&mut self) -> Result<Event, ClientError> {
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".to_string()))?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".to_string()))?;
        let response =
            json::parse(text).map_err(|e| ClientError::Protocol(format!("bad response: {e}")))?;
        let Some(id) = response.get("id").and_then(Json::as_u64) else {
            // A response that cannot be correlated (the server could not
            // even read an id out of the frame) is connection-fatal.
            return Err(match decode_error(&response) {
                Some(error) => ClientError::Server(error),
                None => ClientError::Protocol("response lacks a numeric \"id\"".to_string()),
            });
        };
        let ticket = Ticket { id };
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => match response.get("stream").and_then(Json::as_str) {
                Some("sweep_item") => {
                    let index =
                        response
                            .get("index")
                            .and_then(Json::as_usize)
                            .ok_or_else(|| {
                                ClientError::Protocol("sweep_item lacks an \"index\"".to_string())
                            })?;
                    Ok(Event::SweepItem {
                        ticket,
                        index,
                        response,
                    })
                }
                Some("sweep_done") => Ok(Event::SweepDone { ticket, response }),
                Some(other) => Err(ClientError::Protocol(format!(
                    "unknown stream frame \"{other}\""
                ))),
                None => Ok(Event::Reply { ticket, response }),
            },
            Some(false) => Ok(Event::Error {
                ticket,
                error: decode_error(&response).unwrap_or_else(|| {
                    WireError::new("internal", "error response without error object")
                }),
            }),
            None => Err(ClientError::Protocol(
                "response lacks an \"ok\" field".to_string(),
            )),
        }
    }

    /// The next completion from the server, for any ticket: buffered events
    /// first (in arrival order), then the wire. Blocks until one arrives.
    pub fn recv(&mut self) -> Result<Event, ClientError> {
        if let Some(event) = self.buffered.pop_front() {
            return Ok(event);
        }
        self.read_event()
    }

    /// The next event belonging to `ticket`, buffering events of other
    /// tickets for later [`Client::recv`] / [`Client::wait`] calls.
    fn next_event_for(&mut self, ticket: Ticket) -> Result<Event, ClientError> {
        if let Some(pos) = self.buffered.iter().position(|e| e.ticket() == ticket) {
            return Ok(self.buffered.remove(pos).expect("position just found"));
        }
        loop {
            let event = self.read_event()?;
            if event.ticket() == ticket {
                return Ok(event);
            }
            self.buffered.push_back(event);
        }
    }

    /// Block until `ticket`'s terminal reply arrives and return the response
    /// envelope; completions for other tickets are buffered, not lost. For
    /// streaming sweeps use [`Client::sweep_stream`] instead.
    pub fn wait(&mut self, ticket: Ticket) -> Result<Json, ClientError> {
        match self.next_event_for(ticket)? {
            Event::Reply { response, .. } => Ok(response),
            Event::Error { error, .. } => Err(ClientError::Server(error)),
            Event::SweepItem { .. } | Event::SweepDone { .. } => Err(ClientError::Protocol(
                "wait() used on a streaming sweep; use sweep_stream()".to_string(),
            )),
        }
    }

    /// Send a raw request object (the `v` and `id` fields are filled in) and
    /// block for the raw response object. Server-side errors come back as
    /// [`ClientError::Server`].
    pub fn call(&mut self, request: Json) -> Result<Json, ClientError> {
        let ticket = self.submit(request)?;
        self.wait(ticket)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let response = self.call(Json::obj().with("op", Json::str("ping")))?;
        match result_of(&response)?.get("pong").and_then(Json::as_bool) {
            Some(true) => Ok(()),
            _ => Err(ClientError::Protocol("ping got no pong".to_string())),
        }
    }

    /// Fetch the server's cache counters.
    pub fn cache_stats(&mut self) -> Result<CacheStatsReply, ClientError> {
        let response = self.call(Json::obj().with("op", Json::str("stats")))?;
        let result = result_of(&response)?;
        let field = |name: &str| {
            result
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("stats reply lacks \"{name}\"")))
        };
        // The neg_* fields default to 0 against pre-v2 servers.
        let opt = |name: &str| result.get(name).and_then(Json::as_u64).unwrap_or(0);
        Ok(CacheStatsReply {
            hits: field("hits")?,
            misses: field("misses")?,
            evictions: field("evictions")?,
            entries: field("entries")?,
            capacity: field("capacity")?,
            shards: field("shards")?,
            neg_hits: opt("neg_hits"),
            neg_misses: opt("neg_misses"),
            neg_evictions: opt("neg_evictions"),
            neg_entries: opt("neg_entries"),
            neg_capacity: opt("neg_capacity"),
            max_inflight: opt("max_inflight"),
            inflight_peak: opt("inflight_peak"),
        })
    }

    /// Fetch the server's per-op latency histograms (the `metrics` op) as
    /// the raw result object (`{ops: {<op>: {count, total_ns, buckets}}}`).
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let response = self.call(Json::obj().with("op", Json::str("metrics")))?;
        result_of(&response).cloned()
    }

    /// Fetch the server's latency histograms **and zero them** in one op
    /// (`metrics` with `reset: true`) — the snapshot covers everything since
    /// the last reset, and the next window starts empty. For back-to-back
    /// measurement runs; see `PROTOCOL.md` § metrics.
    pub fn metrics_reset(&mut self) -> Result<Json, ClientError> {
        let response = self.call(
            Json::obj()
                .with("op", Json::str("metrics"))
                .with("reset", Json::Bool(true)),
        )?;
        result_of(&response).cloned()
    }

    /// Ask the server to stop accepting connections and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(Json::obj().with("op", Json::str("shutdown")))
            .map(|_| ())
    }

    fn solve_request<T: WireScalar>(spec: &ConsumerSpec<T>, alpha: &T, cache: CacheMode) -> Json {
        spec.encode_onto(
            Json::obj()
                .with("op", Json::str("solve"))
                .with("scalar", Json::str(T::TAG))
                .with("cache", Json::str(cache.as_wire())),
        )
        .with("alpha", alpha.to_wire())
    }

    fn sweep_request<T: WireScalar>(
        spec: &ConsumerSpec<T>,
        alphas: &[T],
        cache: CacheMode,
    ) -> Json {
        spec.encode_onto(
            Json::obj()
                .with("op", Json::str("sweep"))
                .with("scalar", Json::str(T::TAG))
                .with("cache", Json::str(cache.as_wire())),
        )
        .with(
            "alphas",
            Json::Arr(alphas.iter().map(WireScalar::to_wire).collect()),
        )
    }

    fn interact_request<T: WireScalar>(
        spec: &ConsumerSpec<T>,
        mechanism: &[Vec<T>],
        cache: CacheMode,
    ) -> Json {
        spec.encode_onto(
            Json::obj()
                .with("op", Json::str("interact"))
                .with("scalar", Json::str(T::TAG))
                .with("cache", Json::str(cache.as_wire())),
        )
        .with(
            "mechanism",
            Json::Arr(
                mechanism
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(WireScalar::to_wire).collect()))
                    .collect(),
            ),
        )
    }

    /// Submit a solve without waiting (pair with [`Client::wait`] and
    /// [`decode_solve`], or drain completions via [`Client::recv`]).
    pub fn submit_solve<T: WireScalar>(
        &mut self,
        spec: &ConsumerSpec<T>,
        alpha: &T,
        cache: CacheMode,
    ) -> Result<Ticket, ClientError> {
        self.submit(Self::solve_request(spec, alpha, cache))
    }

    /// Submit an interact without waiting.
    pub fn submit_interact<T: WireScalar>(
        &mut self,
        spec: &ConsumerSpec<T>,
        mechanism: &[Vec<T>],
        cache: CacheMode,
    ) -> Result<Ticket, ClientError> {
        self.submit(Self::interact_request(spec, mechanism, cache))
    }

    /// Submit a sweep without waiting. Under v2 its completions are
    /// `sweep_item`/`sweep_done` events; under v1, one monolithic reply.
    pub fn submit_sweep<T: WireScalar>(
        &mut self,
        spec: &ConsumerSpec<T>,
        alphas: &[T],
        cache: CacheMode,
    ) -> Result<Ticket, ClientError> {
        self.submit(Self::sweep_request(spec, alphas, cache))
    }

    /// Solve one request at one privacy level (blocking; works under both
    /// negotiated versions).
    pub fn solve<T: WireScalar>(
        &mut self,
        spec: &ConsumerSpec<T>,
        alpha: &T,
        cache: CacheMode,
    ) -> Result<Reply<SolveReply<T>>, ClientError> {
        let ticket = self.submit_solve(spec, alpha, cache)?;
        let response = self.wait(ticket)?;
        let (result, cache, raw) = cached_result(&response)?;
        Ok(Reply {
            value: decode_solve(result)?,
            cache,
            raw,
        })
    }

    /// Solve one request at a batch of privacy levels (blocking). Under v2
    /// this consumes the stream and reorders to input order; `raw` is the
    /// reassembled monolithic rendering, byte-identical to a v1 reply for
    /// the same request.
    pub fn sweep<T: WireScalar>(
        &mut self,
        spec: &ConsumerSpec<T>,
        alphas: &[T],
        cache: CacheMode,
    ) -> Result<Reply<Vec<SolveReply<T>>>, ClientError> {
        if self.version == PROTOCOL_V1 {
            let response = self.call(Self::sweep_request(spec, alphas, cache))?;
            let (result, cache, raw) = cached_result(&response)?;
            let solves = result
                .get("solves")
                .and_then(Json::as_arr)
                .ok_or_else(|| ClientError::Protocol("sweep reply lacks \"solves\"".to_string()))?;
            let value = solves
                .iter()
                .map(decode_solve)
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Reply { value, cache, raw });
        }
        let mut stream = self.sweep_stream(spec, alphas, cache)?;
        let mut slots: Vec<Option<(SolveReply<T>, String)>> = Vec::new();
        slots.resize_with(alphas.len(), || None);
        for item in stream.by_ref() {
            let item = item?;
            if item.index >= slots.len() {
                return Err(ClientError::Protocol(format!(
                    "sweep_item index {} out of range",
                    item.index
                )));
            }
            slots[item.index] = Some((item.value, item.raw));
        }
        let done = stream.done()?;
        let mut value = Vec::with_capacity(slots.len());
        let mut raws = Vec::with_capacity(slots.len());
        for (k, slot) in slots.into_iter().enumerate() {
            let (solve, item_raw) = slot.ok_or_else(|| {
                ClientError::Protocol(format!("sweep stream never delivered index {k}"))
            })?;
            raws.push(item_raw);
            value.push(solve);
        }
        let raw = crate::proto::assemble_solves(raws.iter().map(String::as_str));
        Ok(Reply {
            value,
            cache: done.cache,
            raw,
        })
    }

    /// Optimal post-processing of a deployed mechanism (blocking).
    pub fn interact<T: WireScalar>(
        &mut self,
        spec: &ConsumerSpec<T>,
        mechanism: &[Vec<T>],
        cache: CacheMode,
    ) -> Result<Reply<InteractReply<T>>, ClientError> {
        let ticket = self.submit_interact(spec, mechanism, cache)?;
        let response = self.wait(ticket)?;
        let (result, cache, raw) = cached_result(&response)?;
        let loss = scalar_reply_field::<T>(result, "loss")?;
        let post_processing = rows_from_wire(result.get("post_processing").ok_or_else(|| {
            ClientError::Protocol("interact reply lacks \"post_processing\"".to_string())
        })?)
        .map_err(|e| ClientError::Protocol(e.to_string()))?;
        let induced = rows_from_wire(result.get("induced").ok_or_else(|| {
            ClientError::Protocol("interact reply lacks \"induced\"".to_string())
        })?)
        .map_err(|e| ClientError::Protocol(e.to_string()))?;
        let stats = result
            .get("stats")
            .and_then(stats_from_wire)
            .ok_or_else(|| ClientError::Protocol("interact reply lacks \"stats\"".to_string()))?;
        Ok(Reply {
            value: InteractReply {
                loss,
                post_processing,
                induced,
                stats,
            },
            cache,
            raw,
        })
    }

    fn zoo_table_request<T: WireScalar>(
        query: &QueryClass,
        alpha: &T,
        consumers: &[ZooConsumerSpec<T>],
        cache: CacheMode,
    ) -> Json {
        Json::obj()
            .with("op", Json::str("zoo_table"))
            .with("scalar", Json::str(T::TAG))
            .with("cache", Json::str(cache.as_wire()))
            .with("query", query_to_wire(query))
            .with("alpha", alpha.to_wire())
            .with(
                "consumers",
                Json::Arr(consumers.iter().map(ZooConsumerSpec::to_wire).collect()),
            )
    }

    fn zoo_ldp_request<T: WireScalar>(
        protocol: LdpProtocol,
        users: usize,
        alpha: &T,
        loss: &LossSpec<T>,
        cache: CacheMode,
    ) -> Json {
        Json::obj()
            .with("op", Json::str("zoo_eval"))
            .with("scalar", Json::str(T::TAG))
            .with("cache", Json::str(cache.as_wire()))
            .with("scenario", Json::str("ldp"))
            .with("protocol", Json::str(protocol.name()))
            .with("users", Json::num_u64(users as u64))
            .with("alpha", alpha.to_wire())
            .with("loss", loss.to_wire())
    }

    fn zoo_compose_request<T: WireScalar>(agents: &[ZooAgentSpec<T>], cache: CacheMode) -> Json {
        Json::obj()
            .with("op", Json::str("zoo_eval"))
            .with("scalar", Json::str(T::TAG))
            .with("cache", Json::str(cache.as_wire()))
            .with("scenario", Json::str("compose"))
            .with(
                "agents",
                Json::Arr(agents.iter().map(ZooAgentSpec::to_wire).collect()),
            )
    }

    /// Submit a `zoo_table` request without waiting.
    pub fn submit_zoo_table<T: WireScalar>(
        &mut self,
        query: &QueryClass,
        alpha: &T,
        consumers: &[ZooConsumerSpec<T>],
        cache: CacheMode,
    ) -> Result<Ticket, ClientError> {
        self.submit(Self::zoo_table_request(query, alpha, consumers, cache))
    }

    /// The minimax-regret table of a query class over a consumer panel
    /// (blocking; the `zoo_table` op). The reply's `value` is the raw result
    /// object — see `PROTOCOL.md` § Zoo operations for its fields
    /// (`candidates`, `losses`, `regrets`, `dominant`, `non_dominated_pair`).
    pub fn zoo_table<T: WireScalar>(
        &mut self,
        query: &QueryClass,
        alpha: &T,
        consumers: &[ZooConsumerSpec<T>],
        cache: CacheMode,
    ) -> Result<Reply<Json>, ClientError> {
        let ticket = self.submit_zoo_table(query, alpha, consumers, cache)?;
        let response = self.wait(ticket)?;
        let (result, cache, raw) = cached_result(&response)?;
        Ok(Reply {
            value: result.clone(),
            cache,
            raw,
        })
    }

    /// Submit a `zoo_eval` LDP-gap request without waiting.
    pub fn submit_zoo_ldp<T: WireScalar>(
        &mut self,
        protocol: LdpProtocol,
        users: usize,
        alpha: &T,
        loss: &LossSpec<T>,
        cache: CacheMode,
    ) -> Result<Ticket, ClientError> {
        self.submit(Self::zoo_ldp_request(protocol, users, alpha, loss, cache))
    }

    /// One point of the local-model gap profile (blocking; `zoo_eval`
    /// scenario `"ldp"`): the minimax loss of the protocol's induced central
    /// mechanism next to the centralized optimum, and their difference.
    pub fn zoo_ldp<T: WireScalar>(
        &mut self,
        protocol: LdpProtocol,
        users: usize,
        alpha: &T,
        loss: &LossSpec<T>,
        cache: CacheMode,
    ) -> Result<Reply<Json>, ClientError> {
        let ticket = self.submit_zoo_ldp(protocol, users, alpha, loss, cache)?;
        let response = self.wait(ticket)?;
        let (result, cache, raw) = cached_result(&response)?;
        Ok(Reply {
            value: result.clone(),
            cache,
            raw,
        })
    }

    /// Submit a `zoo_eval` composition request without waiting.
    pub fn submit_zoo_compose<T: WireScalar>(
        &mut self,
        agents: &[ZooAgentSpec<T>],
        cache: CacheMode,
    ) -> Result<Ticket, ClientError> {
        self.submit(Self::zoo_compose_request(agents, cache))
    }

    /// Multi-agent composition (blocking; `zoo_eval` scenario `"compose"`):
    /// each agent's tailored optimum plus the composed privacy level of the
    /// joint release.
    pub fn zoo_compose<T: WireScalar>(
        &mut self,
        agents: &[ZooAgentSpec<T>],
        cache: CacheMode,
    ) -> Result<Reply<Json>, ClientError> {
        let ticket = self.submit_zoo_compose(agents, cache)?;
        let response = self.wait(ticket)?;
        let (result, cache, raw) = cached_result(&response)?;
        Ok(Reply {
            value: result.clone(),
            cache,
            raw,
        })
    }

    /// Submit a sweep and iterate its results **in completion order**, each
    /// tagged with its input index — the first item arrives while later
    /// levels are still solving. Under negotiated v1 the monolithic reply is
    /// fetched up front and replayed in input order, so consumers are
    /// version-agnostic. Call [`SweepStream::done`] after iteration for the
    /// terminal frame's cache disposition and aggregate statistics.
    pub fn sweep_stream<'c, T: WireScalar>(
        &'c mut self,
        spec: &ConsumerSpec<T>,
        alphas: &[T],
        cache: CacheMode,
    ) -> Result<SweepStream<'c, T>, ClientError> {
        if self.version == PROTOCOL_V1 {
            let reply = self.sweep(spec, alphas, cache)?;
            let count = reply.value.len() as u64;
            let stats = reply
                .value
                .iter()
                .fold(PivotStats::default(), |mut acc, s| {
                    acc += &s.stats;
                    acc
                });
            let solves = match json::parse(&reply.raw) {
                Ok(parsed) => parsed
                    .get("solves")
                    .and_then(Json::as_arr)
                    .map(<[Json]>::to_vec)
                    .unwrap_or_default(),
                Err(_) => Vec::new(),
            };
            let prefetched = reply
                .value
                .into_iter()
                .zip(solves)
                .enumerate()
                .map(|(index, (value, item))| {
                    Ok(SweepItemReply {
                        index,
                        value,
                        raw: json::to_string(&item),
                    })
                })
                .collect();
            return Ok(SweepStream {
                client: self,
                ticket: None,
                prefetched,
                done: Some(SweepDoneReply {
                    cache: reply.cache,
                    count,
                    stats,
                }),
                terminated: false,
                _marker: std::marker::PhantomData,
            });
        }
        let ticket = self.submit_sweep(spec, alphas, cache)?;
        Ok(SweepStream {
            client: self,
            ticket: Some(ticket),
            prefetched: VecDeque::new(),
            done: None,
            terminated: false,
            _marker: std::marker::PhantomData,
        })
    }
}

/// One streamed sweep result.
#[derive(Debug, Clone)]
pub struct SweepItemReply<T> {
    /// Index into the request's `alphas` array this solve answers.
    pub index: usize,
    /// The decoded solve.
    pub value: SolveReply<T>,
    /// Canonical serialization of the item's `result` object —
    /// byte-identical to the corresponding element of a monolithic reply.
    pub raw: String,
}

/// The terminal summary of a streamed sweep.
#[derive(Debug, Clone)]
pub struct SweepDoneReply {
    /// How the server answered the sweep as a whole.
    pub cache: CacheDisposition,
    /// Number of items streamed.
    pub count: u64,
    /// Field-wise sum of the items' pivot statistics.
    pub stats: PivotStats,
}

/// An iterator over a sweep's per-α results in completion order (see
/// [`Client::sweep_stream`]). Completions for other in-flight tickets
/// observed while streaming are buffered on the client, not lost.
pub struct SweepStream<'c, T: WireScalar> {
    client: &'c mut Client,
    /// `None` under v1 replay (everything is prefetched).
    ticket: Option<Ticket>,
    prefetched: VecDeque<Result<SweepItemReply<T>, ClientError>>,
    done: Option<SweepDoneReply>,
    terminated: bool,
    _marker: std::marker::PhantomData<T>,
}

impl<T: WireScalar> Iterator for SweepStream<'_, T> {
    type Item = Result<SweepItemReply<T>, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(item) = self.prefetched.pop_front() {
            return Some(item);
        }
        if self.terminated {
            return None;
        }
        let ticket = self.ticket?;
        match self.client.next_event_for(ticket) {
            Ok(Event::SweepItem {
                index, response, ..
            }) => {
                let item = (|| {
                    let result = result_of(&response)?;
                    Ok(SweepItemReply {
                        index,
                        value: decode_solve(result)?,
                        raw: json::to_string(result),
                    })
                })();
                Some(item)
            }
            Ok(Event::SweepDone { response, .. }) => {
                self.terminated = true;
                self.done = decode_sweep_done(&response).ok();
                None
            }
            Ok(Event::Error { error, .. }) => {
                self.terminated = true;
                Some(Err(ClientError::Server(error)))
            }
            Ok(Event::Reply { .. }) => {
                self.terminated = true;
                Some(Err(ClientError::Protocol(
                    "sweep answered with a non-stream reply".to_string(),
                )))
            }
            Err(e) => {
                self.terminated = true;
                Some(Err(e))
            }
        }
    }
}

impl<T: WireScalar> SweepStream<'_, T> {
    /// The terminal frame's summary. Drains any remaining items first (they
    /// cannot be delivered after this call), so prefer calling it once the
    /// iterator has returned `None`. A terminal failure encountered while
    /// draining — e.g. the server closing the stream with an error frame —
    /// is returned as that error, not masked.
    pub fn done(mut self) -> Result<SweepDoneReply, ClientError> {
        loop {
            match self.next() {
                Some(Ok(_)) => {}
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        self.done.take().ok_or_else(|| {
            ClientError::Protocol("sweep stream ended without a sweep_done frame".to_string())
        })
    }
}

fn result_of(response: &Json) -> Result<&Json, ClientError> {
    response
        .get("result")
        .ok_or_else(|| ClientError::Protocol("response lacks a \"result\"".to_string()))
}

fn decode_error(response: &Json) -> Option<WireError> {
    if response.get("ok").and_then(Json::as_bool) != Some(false) {
        return None;
    }
    let error = response.get("error");
    let code = error
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or("internal");
    let message = error
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    // Return the server's code through a static table so the WireError keeps
    // its &'static str code type.
    Some(WireError::new(intern_code(code), message))
}

fn decode_sweep_done(response: &Json) -> Result<SweepDoneReply, ClientError> {
    let cache = response
        .get("cache")
        .and_then(CacheDisposition::from_wire)
        .ok_or_else(|| ClientError::Protocol("sweep_done lacks a \"cache\" field".to_string()))?;
    let result = result_of(response)?;
    let count = result
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Protocol("sweep_done lacks a \"count\"".to_string()))?;
    let stats = result
        .get("stats")
        .and_then(stats_from_wire)
        .ok_or_else(|| ClientError::Protocol("sweep_done lacks \"stats\"".to_string()))?;
    Ok(SweepDoneReply {
        cache,
        count,
        stats,
    })
}

fn cached_result(response: &Json) -> Result<(&Json, CacheDisposition, String), ClientError> {
    let result = result_of(response)?;
    let cache = response
        .get("cache")
        .and_then(CacheDisposition::from_wire)
        .ok_or_else(|| ClientError::Protocol("response lacks a \"cache\" field".to_string()))?;
    Ok((result, cache, json::to_string(result)))
}

fn scalar_reply_field<T: WireScalar>(result: &Json, field: &str) -> Result<T, ClientError> {
    result
        .get(field)
        .and_then(T::from_wire)
        .ok_or_else(|| ClientError::Protocol(format!("reply lacks a scalar \"{field}\"")))
}

/// Decode one solve result object (a `solve` reply's `result`, one element
/// of a monolithic sweep's `solves`, or a `sweep_item`'s `result`).
pub fn decode_solve<T: WireScalar>(result: &Json) -> Result<SolveReply<T>, ClientError> {
    let alpha = scalar_reply_field::<T>(result, "alpha")?;
    let loss = scalar_reply_field::<T>(result, "loss")?;
    let mechanism = rows_from_wire(
        result
            .get("mechanism")
            .ok_or_else(|| ClientError::Protocol("solve reply lacks \"mechanism\"".to_string()))?,
    )
    .map_err(|e| ClientError::Protocol(e.to_string()))?;
    let stats = result
        .get("stats")
        .and_then(stats_from_wire)
        .ok_or_else(|| ClientError::Protocol("solve reply lacks \"stats\"".to_string()))?;
    Ok(SolveReply {
        alpha,
        loss,
        mechanism,
        stats,
    })
}
